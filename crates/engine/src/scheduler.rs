//! The submission scheduler of the [`EngineService`](crate::EngineService):
//! a priority queue the service front-end pushes jobs into and the
//! persistent workers pop from.
//!
//! Two policies are available:
//!
//! * [`SchedulingPolicy::SizeAware`] (the default) orders by caller
//!   [`Priority`] first, then by an estimated job cost (small before
//!   large), then by submission order. Large jobs — e.g. dense random
//!   states on the Table-1 `[4,7,4,4,3,5]` register — therefore stop
//!   head-of-line-blocking cheap ones that arrived later.
//! * [`SchedulingPolicy::Fifo`] is strict submission order, the behaviour
//!   of the original batch queue; kept as the baseline the streaming
//!   benchmark compares against.
//!
//! The choice of policy never changes *what* is computed — every job is
//! independent and bit-identical to the sequential pipeline — only *when*
//! it runs, i.e. its queue wait.
//!
//! **Liveness caveat:** the size-aware policy has no aging. Under a
//! sustained stream of smaller (or higher-priority) jobs arriving faster
//! than the pool serves them, a queued large job can be deferred
//! indefinitely — its sort key never improves. Streams that must bound
//! every job's wait should pin critical requests to [`Priority::High`],
//! poll with [`JobHandle::wait_timeout`](crate::JobHandle::wait_timeout),
//! or select [`SchedulingPolicy::Fifo`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::request::{PrepareReport, PrepareRequest, StatePayload};
use crate::service::EngineError;

/// Caller-assigned urgency of a [`PrepareRequest`], consulted before the
/// size estimate by the [`SizeAware`](SchedulingPolicy::SizeAware)
/// scheduler: all `High` jobs run before any `Normal` job, which run
/// before any `Low` job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work — yields to everything else.
    Low,
    /// The default for every request.
    #[default]
    Normal,
    /// Latency-sensitive work — jumps the queue regardless of size.
    High,
}

/// Queue discipline of an [`EngineService`](crate::EngineService).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Strict submission order (the pre-service batch-queue behaviour).
    Fifo,
    /// [`Priority`] first, then estimated cost (small jobs first), then
    /// submission order — the anti-head-of-line-blocking default.
    #[default]
    SizeAware,
}

/// Estimated pipeline cost of a request, the size key of the
/// [`SizeAware`](SchedulingPolicy::SizeAware) policy: the dense pipeline
/// walks the full amplitude vector (`dims.space_size()`), the sparse one
/// is linear in support size × register width.
pub(crate) fn estimate_cost(request: &PrepareRequest) -> u64 {
    match &request.payload {
        StatePayload::Dense(amplitudes) => amplitudes.len() as u64,
        StatePayload::Sparse(entries) => {
            (entries.len() as u64).saturating_mul(request.dims.len().max(1) as u64)
        }
    }
}

/// One accepted submission: the request plus everything the worker needs
/// to report back.
pub(crate) struct Job {
    pub(crate) request: PrepareRequest,
    /// Wall-clock instant of submission — `queue_wait` is measured from
    /// here to worker pickup.
    pub(crate) submitted_at: Instant,
    /// The per-job result channel; the paired receiver lives in the
    /// caller's [`JobHandle`](crate::JobHandle).
    pub(crate) reply: Sender<Result<PrepareReport, EngineError>>,
}

impl Job {
    /// Resolves this job's handle without running it.
    pub(crate) fn reject(self, error: EngineError) {
        // A dropped handle is fine — nobody is waiting.
        let _ = self.reply.send(Err(error));
    }
}

/// Why [`Scheduler::try_push`] refused a job. The job itself is handed
/// back to the caller alongside this, so nothing about it (request, reply
/// channel) leaks into the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushRefusal {
    /// The queue is at its configured depth bound.
    Full {
        /// Jobs queued at the moment of refusal (== the bound).
        depth: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The queue no longer accepts submissions (closing or aborted).
    Closed,
}

/// Min-order sort key: (priority reversed, cost, sequence number). Lower
/// pops first.
type SortKey = (u8, u64, u64);

struct Queued {
    key: Reverse<SortKey>,
    job: Job,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

#[derive(Default)]
struct Shared {
    heap: BinaryHeap<Queued>,
    /// No further submissions; workers drain the heap, then exit.
    closed: bool,
    /// Tear-down: the heap has been rejected wholesale and workers exit
    /// immediately after their in-flight job.
    aborted: bool,
    /// Deepest the queue has ever been — the admission-control observable
    /// ([`EngineStats::high_watermark`](crate::EngineStats)).
    high_watermark: usize,
}

/// The condvar-guarded job queue shared between the service front-end and
/// its workers; see the [module documentation](self).
pub(crate) struct Scheduler {
    policy: SchedulingPolicy,
    /// Admission bound on the number of queued (not yet picked-up) jobs;
    /// `None` admits unboundedly.
    depth: Option<usize>,
    shared: Mutex<Shared>,
    /// Workers wait here for jobs.
    available: Condvar,
    /// Blocking submitters wait here for queue space (bounded queues only).
    space: Condvar,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("policy", &self.policy)
            .field("queued", &self.len())
            .finish()
    }
}

impl Scheduler {
    pub(crate) fn new(policy: SchedulingPolicy, depth: Option<usize>) -> Self {
        Scheduler {
            policy,
            // A zero bound would deadlock blocking submitters forever;
            // clamp to at least one queue slot.
            depth: depth.map(|d| d.max(1)),
            shared: Mutex::new(Shared::default()),
            available: Condvar::new(),
            space: Condvar::new(),
        }
    }

    fn sort_key(&self, request: &PrepareRequest, seq: u64) -> SortKey {
        match self.policy {
            SchedulingPolicy::Fifo => (0, 0, seq),
            SchedulingPolicy::SizeAware => {
                // Priority::High = 2 must pop first → reverse into 0.
                let urgency = 2 - request.priority as u8;
                (urgency, estimate_cost(request), seq)
            }
        }
    }

    /// Enqueues under `seq`, parking on the space condvar while a bounded
    /// queue is full — the blocking admission path. If the queue is (or
    /// becomes, while parked) closed, the job is rejected with
    /// [`EngineError::QueueClosed`] through its own reply channel.
    pub(crate) fn push(&self, job: Job, seq: u64) {
        let key = Reverse(self.sort_key(&job.request, seq));
        let mut shared = self.shared.lock().expect("scheduler poisoned");
        loop {
            if shared.closed || shared.aborted {
                drop(shared);
                job.reject(EngineError::QueueClosed);
                return;
            }
            match self.depth {
                Some(limit) if shared.heap.len() >= limit => {
                    shared = self.space.wait(shared).expect("scheduler poisoned");
                }
                _ => break,
            }
        }
        shared.heap.push(Queued { key, job });
        shared.high_watermark = shared.high_watermark.max(shared.heap.len());
        drop(shared);
        self.available.notify_one();
    }

    /// Non-blocking admission: enqueues under `seq`, or hands the job back
    /// untouched (nothing queued, reply channel still owned by the caller)
    /// with the refusal reason — full or closed.
    // The large Err variant is the point: a refused job is handed back
    // whole (request + reply channel) so nothing leaks into the queue.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, job: Job, seq: u64) -> Result<(), (Job, PushRefusal)> {
        let key = Reverse(self.sort_key(&job.request, seq));
        let mut shared = self.shared.lock().expect("scheduler poisoned");
        if shared.closed || shared.aborted {
            return Err((job, PushRefusal::Closed));
        }
        if let Some(limit) = self.depth {
            if shared.heap.len() >= limit {
                let depth = shared.heap.len();
                return Err((job, PushRefusal::Full { depth, limit }));
            }
        }
        shared.heap.push(Queued { key, job });
        shared.high_watermark = shared.high_watermark.max(shared.heap.len());
        drop(shared);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job is available and returns it, or returns `None`
    /// when the worker should exit (queue closed and drained, or aborted).
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut shared = self.shared.lock().expect("scheduler poisoned");
        loop {
            if shared.aborted {
                return None;
            }
            if let Some(queued) = shared.heap.pop() {
                drop(shared);
                // A slot freed up: wake one parked blocking submitter.
                self.space.notify_one();
                return Some(queued.job);
            }
            if shared.closed {
                return None;
            }
            shared = self.available.wait(shared).expect("scheduler poisoned");
        }
    }

    /// Drain mode: refuse new submissions, let workers finish what is
    /// queued, then have them exit.
    pub(crate) fn close(&self) {
        self.shared.lock().expect("scheduler poisoned").closed = true;
        self.available.notify_all();
        // Parked blocking submitters must wake to observe the close and
        // reject their jobs instead of waiting for space forever.
        self.space.notify_all();
    }

    /// Abort mode: refuse new submissions and resolve every queued job to
    /// [`EngineError::Shutdown`]; workers exit after their in-flight job.
    pub(crate) fn abort(&self) {
        let drained: Vec<Job> = {
            let mut shared = self.shared.lock().expect("scheduler poisoned");
            shared.closed = true;
            shared.aborted = true;
            shared.heap.drain().map(|queued| queued.job).collect()
        };
        self.available.notify_all();
        self.space.notify_all();
        for job in drained {
            job.reject(EngineError::Shutdown);
        }
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub(crate) fn len(&self) -> usize {
        self.shared.lock().expect("scheduler poisoned").heap.len()
    }

    /// Deepest the queue has ever been.
    pub(crate) fn high_watermark(&self) -> usize {
        self.shared
            .lock()
            .expect("scheduler poisoned")
            .high_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_core::PrepareOptions;
    use mdq_num::radix::Dims;
    use mdq_states::ghz;
    use std::sync::mpsc::channel;

    fn dense(dims: &[usize], priority: Priority) -> PrepareRequest {
        let d = Dims::new(dims.to_vec()).unwrap();
        PrepareRequest::dense(d.clone(), ghz(&d), PrepareOptions::exact()).with_priority(priority)
    }

    fn job(
        request: PrepareRequest,
    ) -> (
        Job,
        std::sync::mpsc::Receiver<Result<PrepareReport, EngineError>>,
    ) {
        let (reply, rx) = channel();
        (
            Job {
                request,
                submitted_at: Instant::now(),
                reply,
            },
            rx,
        )
    }

    /// Pushes the given requests in order and returns the space sizes in
    /// pop order.
    fn pop_order(policy: SchedulingPolicy, requests: Vec<PrepareRequest>) -> Vec<usize> {
        let scheduler = Scheduler::new(policy, None);
        let mut receivers = Vec::new();
        for (seq, request) in requests.into_iter().enumerate() {
            let (job, rx) = job(request);
            scheduler.push(job, seq as u64);
            receivers.push(rx);
        }
        scheduler.close();
        let mut order = Vec::new();
        while let Some(job) = scheduler.pop() {
            order.push(job.request.dims.space_size());
        }
        order
    }

    #[test]
    fn size_aware_pops_small_jobs_first() {
        let order = pop_order(
            SchedulingPolicy::SizeAware,
            vec![
                dense(&[4, 4, 4], Priority::Normal), // 64
                dense(&[2, 2], Priority::Normal),    // 4
                dense(&[3, 3], Priority::Normal),    // 9
            ],
        );
        assert_eq!(order, vec![4, 9, 64]);
    }

    #[test]
    fn priority_beats_size() {
        let order = pop_order(
            SchedulingPolicy::SizeAware,
            vec![
                dense(&[2, 2], Priority::Low),     // 4, but Low
                dense(&[4, 4, 4], Priority::High), // 64, but High
                dense(&[3, 3], Priority::Normal),  // 9
            ],
        );
        assert_eq!(order, vec![64, 9, 4]);
    }

    #[test]
    fn equal_keys_fall_back_to_submission_order() {
        // Three distinct registers with the same space size (cost 6 each):
        // ties must resolve in submission order.
        let scheduler = Scheduler::new(SchedulingPolicy::SizeAware, None);
        let shapes: [&[usize]; 3] = [&[2, 3], &[3, 2], &[6]];
        for (seq, shape) in shapes.iter().enumerate() {
            let (j, _rx) = job(dense(shape, Priority::Normal));
            scheduler.push(j, seq as u64);
        }
        scheduler.close();
        let mut order = Vec::new();
        while let Some(popped) = scheduler.pop() {
            order.push(popped.request.dims.as_slice().to_vec());
        }
        let want: Vec<Vec<usize>> = shapes.iter().map(|s| s.to_vec()).collect();
        assert_eq!(order, want);
    }

    #[test]
    fn fifo_ignores_priority_and_size() {
        let order = pop_order(
            SchedulingPolicy::Fifo,
            vec![
                dense(&[4, 4, 4], Priority::Low), // 64
                dense(&[2, 2], Priority::High),   // 4
                dense(&[3, 3], Priority::Normal), // 9
            ],
        );
        assert_eq!(order, vec![64, 4, 9]);
    }

    #[test]
    fn sparse_jobs_cost_by_support_not_space() {
        let d = Dims::new(vec![3; 12]).unwrap();
        let sparse = PrepareRequest::sparse(
            d.clone(),
            mdq_states::sparse::ghz(&d),
            PrepareOptions::exact(),
        );
        // 3 support entries × 12 qudits = 36 ≪ 3^12 dense amplitudes.
        assert_eq!(estimate_cost(&sparse), 36);
        let small_dense = dense(&[2, 2], Priority::Normal);
        assert_eq!(estimate_cost(&small_dense), 4);
    }

    #[test]
    fn abort_rejects_queued_jobs_with_shutdown() {
        let scheduler = Scheduler::new(SchedulingPolicy::SizeAware, None);
        let (j1, rx1) = job(dense(&[2, 2], Priority::Normal));
        let (j2, rx2) = job(dense(&[3, 3], Priority::Normal));
        scheduler.push(j1, 0);
        scheduler.push(j2, 1);
        scheduler.abort();
        assert!(matches!(rx1.recv().unwrap(), Err(EngineError::Shutdown)));
        assert!(matches!(rx2.recv().unwrap(), Err(EngineError::Shutdown)));
        assert!(scheduler.pop().is_none(), "workers exit after abort");
        // Late submissions are rejected as queue-closed.
        let (j3, rx3) = job(dense(&[2, 2], Priority::Normal));
        scheduler.push(j3, 2);
        assert!(matches!(rx3.recv().unwrap(), Err(EngineError::QueueClosed)));
    }

    #[test]
    fn bounded_queue_refuses_when_full_and_frees_on_pop() {
        let scheduler = Scheduler::new(SchedulingPolicy::Fifo, Some(2));
        let (j1, _rx1) = job(dense(&[2, 2], Priority::Normal));
        let (j2, _rx2) = job(dense(&[3, 3], Priority::Normal));
        assert!(scheduler.try_push(j1, 0).is_ok());
        assert!(scheduler.try_push(j2, 1).is_ok());
        // Full: the job comes back untouched, with the refusal reason.
        let (j3, _rx3) = job(dense(&[2, 3], Priority::Normal));
        let (returned, refusal) = scheduler.try_push(j3, 2).unwrap_err();
        assert_eq!(refusal, PushRefusal::Full { depth: 2, limit: 2 });
        assert_eq!(returned.request.dims.as_slice(), &[2, 3]);
        assert_eq!(scheduler.len(), 2);
        assert_eq!(scheduler.high_watermark(), 2);
        // Popping frees a slot; admission resumes.
        assert!(scheduler.pop().is_some());
        assert!(scheduler.try_push(returned, 3).is_ok());
        assert_eq!(scheduler.high_watermark(), 2, "watermark is a maximum");
    }

    #[test]
    fn blocking_push_parks_until_space_frees() {
        let scheduler = Scheduler::new(SchedulingPolicy::Fifo, Some(1));
        let (j1, _rx1) = job(dense(&[2, 2], Priority::Normal));
        scheduler.push(j1, 0);
        std::thread::scope(|s| {
            let pusher = s.spawn(|| {
                let (j2, rx2) = job(dense(&[3, 3], Priority::Normal));
                // Parks: the queue is full until the main thread pops.
                scheduler.push(j2, 1);
                rx2
            });
            // Pop one job; the parked pusher must wake and enqueue.
            assert!(scheduler.pop().is_some());
            let _rx2 = pusher.join().unwrap();
            assert_eq!(scheduler.len(), 1);
        });
    }

    #[test]
    fn close_wakes_parked_pushers_with_queue_closed() {
        let scheduler = Scheduler::new(SchedulingPolicy::Fifo, Some(1));
        let (j1, _rx1) = job(dense(&[2, 2], Priority::Normal));
        scheduler.push(j1, 0);
        std::thread::scope(|s| {
            let pusher = s.spawn(|| {
                let (j2, rx2) = job(dense(&[3, 3], Priority::Normal));
                scheduler.push(j2, 1); // parks on the full queue
                rx2
            });
            // Give the pusher a moment to park, then close: it must wake
            // and reject its job rather than wait for space forever.
            std::thread::sleep(std::time::Duration::from_millis(10));
            scheduler.close();
            let rx2 = pusher.join().unwrap();
            assert!(matches!(rx2.recv().unwrap(), Err(EngineError::QueueClosed)));
        });
    }

    #[test]
    fn zero_depth_is_clamped_to_one() {
        let scheduler = Scheduler::new(SchedulingPolicy::Fifo, Some(0));
        let (j1, _rx1) = job(dense(&[2, 2], Priority::Normal));
        assert!(scheduler.try_push(j1, 0).is_ok(), "one slot always exists");
        let (j2, _rx2) = job(dense(&[3, 3], Priority::Normal));
        assert!(matches!(
            scheduler.try_push(j2, 1),
            Err((_, PushRefusal::Full { limit: 1, .. }))
        ));
    }

    #[test]
    fn try_push_after_close_reports_closed() {
        let scheduler = Scheduler::new(SchedulingPolicy::Fifo, None);
        scheduler.close();
        let (j, _rx) = job(dense(&[2, 2], Priority::Normal));
        assert!(matches!(
            scheduler.try_push(j, 0),
            Err((_, PushRefusal::Closed))
        ));
    }

    #[test]
    fn close_drains_before_exit() {
        let scheduler = Scheduler::new(SchedulingPolicy::Fifo, None);
        let (j, _rx) = job(dense(&[2, 2], Priority::Normal));
        scheduler.push(j, 0);
        scheduler.close();
        assert!(scheduler.pop().is_some(), "queued job survives close");
        assert!(scheduler.pop().is_none(), "then the worker exits");
    }
}
