//! The submission scheduler of the [`EngineService`](crate::EngineService):
//! a priority queue the service front-end pushes jobs into and the
//! persistent workers pop from.
//!
//! Two policies are available:
//!
//! * [`SchedulingPolicy::SizeAware`] (the default) orders by caller
//!   [`Priority`] first, then by an estimated job cost (small before
//!   large), then by submission order. Large jobs — e.g. dense random
//!   states on the Table-1 `[4,7,4,4,3,5]` register — therefore stop
//!   head-of-line-blocking cheap ones that arrived later.
//! * [`SchedulingPolicy::Fifo`] is strict submission order, the behaviour
//!   of the original batch queue; kept as the baseline the streaming
//!   benchmark compares against.
//!
//! The choice of policy never changes *what* is computed — every job is
//! independent and bit-identical to the sequential pipeline — only *when*
//! it runs, i.e. its queue wait.
//!
//! # Wait-time aging (the starvation guard)
//!
//! A size-aware queue without aging is not live: under a sustained stream
//! of smaller (or higher-priority) jobs arriving faster than the pool
//! serves them, a queued large job would be deferred indefinitely. The
//! scheduler therefore ages queued jobs ([`Aging::HalveEvery`], on by
//! default): every full epoch a job has spent in the queue halves its
//! effective cost, and every [`Aging::PRIORITY_PROMOTION_EPOCHS`] epochs
//! promote it one [`Priority`] class. A job of estimated cost `c` thus
//! overtakes fresh minimum-cost competitors of the same priority after at
//! most `⌈log₂ c⌉ + 1` epochs, and overtakes *any* fresh job after at most
//! `2 · PRIORITY_PROMOTION_EPOCHS` further epochs — every queued job's
//! wait is bounded by a multiple of the epoch plus residual service time,
//! no matter what keeps arriving. Ties (including aged-into-equality ties)
//! still resolve in submission order, so the oldest job wins.
//!
//! [`BinaryHeap`] keys are frozen at push, so aging is implemented as a
//! *lazy promotion pass*: each queued entry remembers its base key and its
//! enqueue epoch, and whenever a push or pop observes that the epoch has
//! advanced, the heap is rebuilt with every key recomputed at the job's
//! current age (an `O(n)` heapify, at most once per epoch — amortized
//! noise next to a single pipeline run). Between rebuilds keys are at most
//! one epoch stale, which is absorbed by the `+ 1` in the bound above.
//!
//! # Ticketed, FIFO-fair bounded admission
//!
//! On a bounded queue (`Scheduler::new` with a depth), blocking
//! submitters that find the queue full park on a **ticketed waiter
//! queue**: each parked submitter takes the next admission ticket, slots
//! freed by `Scheduler::pop` are handed to ticket holders strictly in
//! arrival order, and a concurrent `Scheduler::try_push` is refused
//! whenever ticket holders are parked — a non-blocking flood can never
//! steal a slot a parked submitter is owed. Every parked submitter
//! therefore admits after at most `tickets-ahead + 1` pops: a bounded
//! admission wait, recorded per job as
//! [`PrepareReport::admission_wait`](crate::PrepareReport) and observable
//! in aggregate through [`EngineStats::parked`](crate::EngineStats).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::request::{PrepareReport, PrepareRequest, StatePayload};
use crate::service::EngineError;

/// Caller-assigned urgency of a [`PrepareRequest`], consulted before the
/// size estimate by the [`SizeAware`](SchedulingPolicy::SizeAware)
/// scheduler: all `High` jobs run before any `Normal` job, which run
/// before any `Low` job — until wait-time [`Aging`] promotes a long-queued
/// job into the next class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work — yields to everything else.
    Low,
    /// The default for every request.
    #[default]
    Normal,
    /// Latency-sensitive work — jumps the queue regardless of size.
    High,
}

/// Queue discipline of an [`EngineService`](crate::EngineService).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Strict submission order (the pre-service batch-queue behaviour).
    Fifo,
    /// [`Priority`] first, then estimated cost (small jobs first), then
    /// submission order — the anti-head-of-line-blocking default. Paired
    /// with [`Aging`] (on by default) so no job starves.
    #[default]
    SizeAware,
}

/// Wait-time aging of the [`SizeAware`](SchedulingPolicy::SizeAware)
/// scheduler — the starvation guard (see the [module docs](self)).
///
/// Configured through
/// [`EngineConfig::with_aging`](crate::EngineConfig::with_aging); ignored
/// under [`SchedulingPolicy::Fifo`], which is starvation-free by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aging {
    /// No aging: the raw size-aware key, frozen for the job's lifetime.
    /// A queued large job can then be deferred indefinitely by a sustained
    /// faster-than-service stream of smaller jobs — kept only as the
    /// baseline for fairness measurements (`engine_bench --fairness`).
    Off,
    /// Every full epoch of queue wait halves a job's effective cost, and
    /// every [`Aging::PRIORITY_PROMOTION_EPOCHS`] epochs promote it one
    /// [`Priority`] class. Smaller epochs bound waits tighter but erode
    /// the small-job latency win sooner; see the README's tuning guidance.
    HalveEvery(Duration),
}

impl Aging {
    /// The default aging epoch: with typical large/small cost ratios of
    /// ~10³ (≈10 halvings), a starved job overtakes same-priority traffic
    /// after ≈220 ms and any traffic after ≈1.5 s — slow enough to keep
    /// the size-aware p99 win intact, fast enough that nothing starves.
    pub const DEFAULT_EPOCH: Duration = Duration::from_millis(20);

    /// Epochs of queue wait per one-class [`Priority`] promotion under
    /// [`Aging::HalveEvery`]. Cost decay exhausts after at most 64 epochs
    /// (`u64` cost), so priority promotion is deliberately the slower,
    /// second-stage credit: priority inversion only happens for jobs the
    /// queue has demonstrably failed to serve for many epochs.
    pub const PRIORITY_PROMOTION_EPOCHS: u64 = 32;

    /// The epoch duration when aging is active (clamped away from zero —
    /// a zero epoch would degenerate into pure FIFO-by-age), or `None`.
    pub(crate) fn epoch(self) -> Option<Duration> {
        match self {
            Aging::Off => None,
            Aging::HalveEvery(epoch) => Some(epoch.max(Duration::from_nanos(1))),
        }
    }
}

impl Default for Aging {
    /// Aging on, at [`Aging::DEFAULT_EPOCH`].
    fn default() -> Self {
        Aging::HalveEvery(Self::DEFAULT_EPOCH)
    }
}

/// Estimated pipeline cost of a request, the size key of the
/// [`SizeAware`](SchedulingPolicy::SizeAware) policy: the dense pipeline
/// walks the full amplitude vector (`dims.space_size()`), the sparse one
/// is linear in support size × register width. Clamped to ≥ 1 so a
/// malformed (e.g. empty-support) payload can never sort *ahead of* every
/// real job on a zero cost.
pub(crate) fn estimate_cost(request: &PrepareRequest) -> u64 {
    let cost = match &request.payload {
        StatePayload::Dense(amplitudes) => amplitudes.len() as u64,
        StatePayload::Sparse(entries) => {
            (entries.len() as u64).saturating_mul(request.dims.len().max(1) as u64)
        }
    };
    cost.max(1)
}

/// One accepted submission: the request plus everything the worker needs
/// to report back.
pub(crate) struct Job {
    pub(crate) request: PrepareRequest,
    /// Wall-clock instant of submission — `queue_wait` is measured from
    /// here to worker pickup (and therefore includes any parked admission
    /// wait).
    pub(crate) submitted_at: Instant,
    /// Time this job's blocking submitter spent parked on the admission
    /// ticket queue before the job entered the scheduler (zero for jobs
    /// admitted without parking). Copied onto
    /// [`PrepareReport::admission_wait`](crate::PrepareReport).
    pub(crate) admission_wait: Duration,
    /// The per-job result channel; the paired receiver lives in the
    /// caller's [`JobHandle`](crate::JobHandle).
    pub(crate) reply: Sender<Result<PrepareReport, EngineError>>,
}

impl Job {
    /// Resolves this job's handle without running it.
    pub(crate) fn reject(self, error: EngineError) {
        // A dropped handle is fine — nobody is waiting.
        let _ = self.reply.send(Err(error));
    }
}

/// Why [`Scheduler::try_push`] refused a job. The job itself is handed
/// back to the caller alongside this, so nothing about it (request, reply
/// channel) leaks into the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushRefusal {
    /// The queue is at its configured depth bound, or parked blocking
    /// submitters hold tickets for the next freed slots (admission is
    /// FIFO-fair: a non-blocking probe never steals a slot a parked
    /// submitter is owed).
    Full {
        /// Jobs queued at the moment of refusal (the bound, or less when
        /// the refusal protects a parked ticket-holder's slot).
        depth: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The queue no longer accepts submissions (closing or aborted).
    Closed,
}

/// Min-order sort key: (priority reversed, effective cost, sequence
/// number). Lower pops first. Under aging the first two components are
/// recomputed from the entry's age at every promotion pass.
type SortKey = (u8, u64, u64);

/// The aged sort key of a job `epochs` epochs after its enqueue: cost
/// halves per epoch, urgency steps one class toward `High` every
/// [`Aging::PRIORITY_PROMOTION_EPOCHS`]. Monotone: both components are
/// non-increasing in `epochs`, so an aged job's key only ever improves,
/// and the untouched `seq` still breaks ties in submission order.
fn aged_key(urgency: u8, cost: u64, seq: u64, epochs: u64) -> SortKey {
    let aged_cost = if epochs >= u64::from(u64::BITS) {
        0
    } else {
        cost >> epochs
    };
    let promoted = (epochs / Aging::PRIORITY_PROMOTION_EPOCHS).min(u64::from(u8::MAX)) as u8;
    (urgency.saturating_sub(promoted), aged_cost, seq)
}

struct Queued {
    key: Reverse<SortKey>,
    /// Base key components, kept so promotion passes can recompute `key`
    /// at the entry's current age.
    urgency: u8,
    cost: u64,
    seq: u64,
    /// Scheduler epoch at which this entry actually entered the heap (not
    /// at which its submitter arrived — a parked submission starts aging
    /// when it is admitted, with a key built at enqueue time).
    enqueued_epoch: u64,
    job: Job,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

#[derive(Default)]
struct Shared {
    heap: BinaryHeap<Queued>,
    /// No further submissions; workers drain the heap, then exit.
    closed: bool,
    /// Tear-down: the heap has been rejected wholesale and workers exit
    /// immediately after their in-flight job.
    aborted: bool,
    /// Deepest the queue has ever been — the admission-control observable
    /// ([`EngineStats::high_watermark`](crate::EngineStats)).
    high_watermark: usize,
    /// Scheduler epoch the heap keys were last recomputed at (promotion
    /// passes are lazy: at most one rebuild per epoch, on push or pop).
    refreshed_epoch: u64,
    /// Next admission ticket to hand to a parking blocking submitter.
    next_ticket: u64,
    /// The ticket currently owed the next freed slot; freed slots are
    /// consumed strictly in ticket order.
    serving_ticket: u64,
    /// Blocking submitters currently parked on the ticket queue
    /// ([`EngineStats::parked`](crate::EngineStats)). While nonzero,
    /// `try_push` refuses rather than steal an owed slot.
    parked: usize,
}

/// The condvar-guarded job queue shared between the service front-end and
/// its workers; see the [module documentation](self) for the aging and
/// admission-fairness design.
pub(crate) struct Scheduler {
    policy: SchedulingPolicy,
    /// Admission bound on the number of queued (not yet picked-up) jobs;
    /// `None` admits unboundedly.
    depth: Option<usize>,
    /// Aging epoch when the policy ages queued jobs, `None` otherwise
    /// (FIFO, or aging off).
    epoch: Option<Duration>,
    /// Epoch 0 of this scheduler's aging clock.
    origin: Instant,
    shared: Mutex<Shared>,
    /// Workers wait here for jobs.
    available: Condvar,
    /// Parked blocking submitters wait here for their ticket's slot
    /// (bounded queues only). Notified broadly — every waiter rechecks
    /// whether it is the serving ticket.
    space: Condvar,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("policy", &self.policy)
            .field("queued", &self.len())
            .finish()
    }
}

impl Scheduler {
    pub(crate) fn new(policy: SchedulingPolicy, depth: Option<usize>, aging: Aging) -> Self {
        let epoch = match policy {
            // FIFO is starvation-free by construction; aging is a no-op.
            SchedulingPolicy::Fifo => None,
            SchedulingPolicy::SizeAware => aging.epoch(),
        };
        Scheduler {
            policy,
            // A zero bound would deadlock blocking submitters forever;
            // clamp to at least one queue slot.
            depth: depth.map(|d| d.max(1)),
            epoch,
            origin: Instant::now(),
            shared: Mutex::new(Shared::default()),
            available: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// The current epoch of the aging clock (always 0 when aging is off).
    fn epoch_now(&self) -> u64 {
        match self.epoch {
            Some(epoch) => (self.origin.elapsed().as_nanos() / epoch.as_nanos()) as u64,
            None => 0,
        }
    }

    /// Lazy promotion pass: if the aging clock has ticked since the last
    /// rebuild, recompute every queued entry's key at its current age and
    /// re-heapify. `O(n)` at most once per epoch; a no-op when aging is
    /// off.
    fn maybe_refresh(&self, shared: &mut Shared) {
        let now = self.epoch_now();
        if now == shared.refreshed_epoch {
            return;
        }
        shared.refreshed_epoch = now;
        if shared.heap.is_empty() {
            return;
        }
        let mut entries = std::mem::take(&mut shared.heap).into_vec();
        for entry in &mut entries {
            let age = now.saturating_sub(entry.enqueued_epoch);
            entry.key = Reverse(aged_key(entry.urgency, entry.cost, entry.seq, age));
        }
        shared.heap = BinaryHeap::from(entries);
    }

    /// Whether the bounded queue has a free slot (always true unbounded).
    fn has_space(&self, shared: &Shared) -> bool {
        self.depth.is_none_or(|limit| shared.heap.len() < limit)
    }

    /// Enqueues under `seq`, constructing the sort key **at actual enqueue
    /// time** — never earlier. A job admitted after a long park therefore
    /// carries a fresh key (and a fresh aging baseline), not the key of
    /// the instant its submitter arrived.
    fn enqueue(&self, shared: &mut Shared, job: Job, seq: u64) {
        self.maybe_refresh(shared);
        let (urgency, cost) = match self.policy {
            SchedulingPolicy::Fifo => (0, 0),
            SchedulingPolicy::SizeAware => {
                // Priority::High = 2 must pop first → reverse into 0.
                (2 - job.request.priority as u8, estimate_cost(&job.request))
            }
        };
        shared.heap.push(Queued {
            key: Reverse(aged_key(urgency, cost, seq, 0)),
            urgency,
            cost,
            seq,
            enqueued_epoch: shared.refreshed_epoch,
            job,
        });
        shared.high_watermark = shared.high_watermark.max(shared.heap.len());
    }

    /// Enqueues under `seq`, parking on the ticketed admission queue while
    /// a bounded queue is full **or earlier-arrived submitters are still
    /// parked** — the blocking, FIFO-fair admission path. Freed slots are
    /// consumed strictly in ticket order, so every parked submitter's wait
    /// is bounded by the pops ahead of its ticket. If the queue is (or
    /// becomes, while parked) closed, the job is rejected with
    /// [`EngineError::QueueClosed`] through its own reply channel.
    pub(crate) fn push(&self, job: Job, seq: u64) {
        let mut shared = self.shared.lock().expect("scheduler poisoned");
        if shared.closed || shared.aborted {
            drop(shared);
            job.reject(EngineError::QueueClosed);
            return;
        }
        // Fast path: space free and no one parked ahead.
        if self.has_space(&shared) && shared.parked == 0 {
            self.enqueue(&mut shared, job, seq);
            drop(shared);
            self.available.notify_one();
            return;
        }
        let mut job = job;
        let ticket = shared.next_ticket;
        shared.next_ticket += 1;
        shared.parked += 1;
        let parked_at = Instant::now();
        loop {
            if shared.closed || shared.aborted {
                shared.parked -= 1;
                drop(shared);
                job.reject(EngineError::QueueClosed);
                return;
            }
            if shared.serving_ticket == ticket && self.has_space(&shared) {
                shared.serving_ticket += 1;
                shared.parked -= 1;
                job.admission_wait = parked_at.elapsed();
                self.enqueue(&mut shared, job, seq);
                drop(shared);
                self.available.notify_one();
                // More than one slot may have been freed since the last
                // admission: hand the chain on to the next ticket holder.
                self.space.notify_all();
                return;
            }
            shared = self.space.wait(shared).expect("scheduler poisoned");
        }
    }

    /// Non-blocking admission: enqueues under `seq`, or hands the job back
    /// untouched (nothing queued, reply channel still owned by the caller)
    /// with the refusal reason — full or closed. Refuses not only when the
    /// queue is at its bound but also while blocking submitters are parked:
    /// their tickets own the next freed slots, and a `try_push` flood must
    /// not steal them (FIFO-fair admission).
    // The large Err variant is the point: a refused job is handed back
    // whole (request + reply channel) so nothing leaks into the queue.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, job: Job, seq: u64) -> Result<(), (Job, PushRefusal)> {
        let mut shared = self.shared.lock().expect("scheduler poisoned");
        if shared.closed || shared.aborted {
            return Err((job, PushRefusal::Closed));
        }
        if let Some(limit) = self.depth {
            if shared.heap.len() >= limit || shared.parked > 0 {
                let depth = shared.heap.len();
                return Err((job, PushRefusal::Full { depth, limit }));
            }
        }
        self.enqueue(&mut shared, job, seq);
        drop(shared);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job is available and returns it, or returns `None`
    /// when the worker should exit (queue closed and drained, or aborted).
    /// Runs the lazy aging promotion pass before selecting, so the popped
    /// job is the best under *current* effective keys.
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut shared = self.shared.lock().expect("scheduler poisoned");
        loop {
            if shared.aborted {
                return None;
            }
            self.maybe_refresh(&mut shared);
            if let Some(queued) = shared.heap.pop() {
                drop(shared);
                // A slot freed up: wake the parked ticket holders so the
                // owed one (and only it) can take the slot.
                self.space.notify_all();
                return Some(queued.job);
            }
            if shared.closed {
                return None;
            }
            shared = self.available.wait(shared).expect("scheduler poisoned");
        }
    }

    /// Drain mode: refuse new submissions, let workers finish what is
    /// queued, then have them exit.
    pub(crate) fn close(&self) {
        self.shared.lock().expect("scheduler poisoned").closed = true;
        self.available.notify_all();
        // Parked blocking submitters must wake to observe the close and
        // reject their jobs instead of waiting for space forever.
        self.space.notify_all();
    }

    /// Abort mode: refuse new submissions and resolve every queued job to
    /// [`EngineError::Shutdown`]; workers exit after their in-flight job.
    pub(crate) fn abort(&self) {
        let drained: Vec<Job> = {
            let mut shared = self.shared.lock().expect("scheduler poisoned");
            shared.closed = true;
            shared.aborted = true;
            shared.heap.drain().map(|queued| queued.job).collect()
        };
        self.available.notify_all();
        self.space.notify_all();
        for job in drained {
            job.reject(EngineError::Shutdown);
        }
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub(crate) fn len(&self) -> usize {
        self.shared.lock().expect("scheduler poisoned").heap.len()
    }

    /// Deepest the queue has ever been.
    pub(crate) fn high_watermark(&self) -> usize {
        self.shared
            .lock()
            .expect("scheduler poisoned")
            .high_watermark
    }

    /// Blocking submitters currently parked on the admission ticket queue.
    pub(crate) fn parked(&self) -> usize {
        self.shared.lock().expect("scheduler poisoned").parked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_core::PrepareOptions;
    use mdq_num::radix::Dims;
    use mdq_states::ghz;
    use std::sync::mpsc::channel;

    fn dense(dims: &[usize], priority: Priority) -> PrepareRequest {
        let d = Dims::new(dims.to_vec()).unwrap();
        PrepareRequest::dense(d.clone(), ghz(&d), PrepareOptions::exact()).with_priority(priority)
    }

    fn job(
        request: PrepareRequest,
    ) -> (
        Job,
        std::sync::mpsc::Receiver<Result<PrepareReport, EngineError>>,
    ) {
        let (reply, rx) = channel();
        (
            Job {
                request,
                submitted_at: Instant::now(),
                admission_wait: Duration::ZERO,
                reply,
            },
            rx,
        )
    }

    fn scheduler(policy: SchedulingPolicy, depth: Option<usize>) -> Scheduler {
        // Aging off keeps the pure-ordering tests time-independent; the
        // aging tests construct their own scheduler with a tiny epoch.
        Scheduler::new(policy, depth, Aging::Off)
    }

    /// Pushes the given requests in order and returns the space sizes in
    /// pop order.
    fn pop_order(policy: SchedulingPolicy, requests: Vec<PrepareRequest>) -> Vec<usize> {
        let scheduler = scheduler(policy, None);
        let mut receivers = Vec::new();
        for (seq, request) in requests.into_iter().enumerate() {
            let (job, rx) = job(request);
            scheduler.push(job, seq as u64);
            receivers.push(rx);
        }
        scheduler.close();
        let mut order = Vec::new();
        while let Some(job) = scheduler.pop() {
            order.push(job.request.dims.space_size());
        }
        order
    }

    #[test]
    fn size_aware_pops_small_jobs_first() {
        let order = pop_order(
            SchedulingPolicy::SizeAware,
            vec![
                dense(&[4, 4, 4], Priority::Normal), // 64
                dense(&[2, 2], Priority::Normal),    // 4
                dense(&[3, 3], Priority::Normal),    // 9
            ],
        );
        assert_eq!(order, vec![4, 9, 64]);
    }

    #[test]
    fn priority_beats_size() {
        let order = pop_order(
            SchedulingPolicy::SizeAware,
            vec![
                dense(&[2, 2], Priority::Low),     // 4, but Low
                dense(&[4, 4, 4], Priority::High), // 64, but High
                dense(&[3, 3], Priority::Normal),  // 9
            ],
        );
        assert_eq!(order, vec![64, 9, 4]);
    }

    #[test]
    fn equal_keys_fall_back_to_submission_order() {
        // Three distinct registers with the same space size (cost 6 each):
        // ties must resolve in submission order.
        let scheduler = scheduler(SchedulingPolicy::SizeAware, None);
        let shapes: [&[usize]; 3] = [&[2, 3], &[3, 2], &[6]];
        for (seq, shape) in shapes.iter().enumerate() {
            let (j, _rx) = job(dense(shape, Priority::Normal));
            scheduler.push(j, seq as u64);
        }
        scheduler.close();
        let mut order = Vec::new();
        while let Some(popped) = scheduler.pop() {
            order.push(popped.request.dims.as_slice().to_vec());
        }
        let want: Vec<Vec<usize>> = shapes.iter().map(|s| s.to_vec()).collect();
        assert_eq!(order, want);
    }

    #[test]
    fn fifo_ignores_priority_and_size() {
        let order = pop_order(
            SchedulingPolicy::Fifo,
            vec![
                dense(&[4, 4, 4], Priority::Low), // 64
                dense(&[2, 2], Priority::High),   // 4
                dense(&[3, 3], Priority::Normal), // 9
            ],
        );
        assert_eq!(order, vec![64, 4, 9]);
    }

    #[test]
    fn sparse_jobs_cost_by_support_not_space() {
        let d = Dims::new(vec![3; 12]).unwrap();
        let sparse = PrepareRequest::sparse(
            d.clone(),
            mdq_states::sparse::ghz(&d),
            PrepareOptions::exact(),
        );
        // 3 support entries × 12 qudits = 36 ≪ 3^12 dense amplitudes.
        assert_eq!(estimate_cost(&sparse), 36);
        let small_dense = dense(&[2, 2], Priority::Normal);
        assert_eq!(estimate_cost(&small_dense), 4);
    }

    #[test]
    fn empty_support_sparse_cost_is_clamped_to_one() {
        // Regression: an empty-support (malformed) sparse payload used to
        // estimate to cost 0 and sort ahead of every real job; the clamp
        // makes it tie with the genuinely smallest jobs instead — and
        // admission-time validation rejects it before it queues at all.
        let d = Dims::new(vec![3, 3]).unwrap();
        let empty = PrepareRequest::sparse(d.clone(), vec![], PrepareOptions::exact());
        assert_eq!(estimate_cost(&empty), 1);
        assert!(estimate_cost(&empty) >= 1, "no payload sorts below cost 1");
    }

    #[test]
    fn aged_key_is_componentwise_monotone() {
        // An aged job's effective key only ever improves: both the urgency
        // and the cost component are non-increasing in age, and the seq
        // tie-breaker is untouched.
        for &(urgency, cost) in &[(2u8, 1u64), (2, 4032), (1, 7), (1, u64::MAX), (0, 64)] {
            let mut previous = aged_key(urgency, cost, 9, 0);
            assert_eq!(previous, (urgency, cost, 9), "age 0 is the raw key");
            for epochs in 1..200u64 {
                let key = aged_key(urgency, cost, 9, epochs);
                assert!(
                    key <= previous,
                    "key must be monotone: {key:?} after {previous:?} at {epochs} epochs"
                );
                assert_eq!(key.2, 9, "seq is never aged");
                previous = key;
            }
            // Fully aged: minimal cost and top urgency.
            assert_eq!(aged_key(urgency, cost, 9, 1000), (0, 0, 9));
        }
        // Cost decays before priority promotes: one epoch halves the cost
        // but leaves the class; PRIORITY_PROMOTION_EPOCHS epochs promote.
        assert_eq!(aged_key(1, 4032, 0, 1), (1, 2016, 0));
        assert_eq!(
            aged_key(2, 4032, 0, Aging::PRIORITY_PROMOTION_EPOCHS).0,
            1,
            "one full promotion interval lifts Low to Normal"
        );
    }

    #[test]
    fn aging_promotes_a_queued_large_job_over_fresh_small_ones() {
        // A 1 ms epoch: the cost-64 job halves to below cost 4 after 5
        // epochs, so after sleeping past the promotion horizon it must pop
        // ahead of fresh small jobs — while ties keep submission order.
        let scheduler = Scheduler::new(
            SchedulingPolicy::SizeAware,
            None,
            Aging::HalveEvery(Duration::from_millis(1)),
        );
        let (large, _rx1) = job(dense(&[4, 4, 4], Priority::Normal)); // cost 64
        scheduler.push(large, 0);
        std::thread::sleep(Duration::from_millis(10));
        for seq in 1..4u64 {
            let (small, _rx) = job(dense(&[2, 2], Priority::Normal)); // cost 4
            scheduler.push(small, seq);
        }
        scheduler.close();
        let first = scheduler.pop().expect("queue is non-empty");
        assert_eq!(
            first.request.dims.space_size(),
            64,
            "the aged large job pops before fresh small ones"
        );
        // The remaining equal-key smalls still pop in submission order.
        let mut rest = Vec::new();
        while let Some(popped) = scheduler.pop() {
            rest.push(popped.request.dims.space_size());
        }
        assert_eq!(rest, vec![4, 4, 4]);
    }

    #[test]
    fn aging_eventually_promotes_across_priority_classes() {
        // PRIORITY_PROMOTION_EPOCHS epochs of wait lift a Low job over a
        // fresh Normal one (cost decay alone never crosses classes).
        let epoch = Duration::from_millis(1);
        let scheduler = Scheduler::new(SchedulingPolicy::SizeAware, None, Aging::HalveEvery(epoch));
        let (low, _rx1) = job(dense(&[2, 2], Priority::Low));
        scheduler.push(low, 0);
        std::thread::sleep(epoch * (Aging::PRIORITY_PROMOTION_EPOCHS as u32 + 4));
        let (normal, _rx2) = job(dense(&[2, 2], Priority::Normal));
        scheduler.push(normal, 1);
        scheduler.close();
        let first = scheduler.pop().expect("queue is non-empty");
        assert_eq!(
            first.request.priority,
            Priority::Low,
            "the long-starved Low job is promoted past fresh Normal work"
        );
    }

    #[test]
    fn abort_rejects_queued_jobs_with_shutdown() {
        let scheduler = scheduler(SchedulingPolicy::SizeAware, None);
        let (j1, rx1) = job(dense(&[2, 2], Priority::Normal));
        let (j2, rx2) = job(dense(&[3, 3], Priority::Normal));
        scheduler.push(j1, 0);
        scheduler.push(j2, 1);
        scheduler.abort();
        assert!(matches!(rx1.recv().unwrap(), Err(EngineError::Shutdown)));
        assert!(matches!(rx2.recv().unwrap(), Err(EngineError::Shutdown)));
        assert!(scheduler.pop().is_none(), "workers exit after abort");
        // Late submissions are rejected as queue-closed.
        let (j3, rx3) = job(dense(&[2, 2], Priority::Normal));
        scheduler.push(j3, 2);
        assert!(matches!(rx3.recv().unwrap(), Err(EngineError::QueueClosed)));
    }

    #[test]
    fn bounded_queue_refuses_when_full_and_frees_on_pop() {
        let scheduler = scheduler(SchedulingPolicy::Fifo, Some(2));
        let (j1, _rx1) = job(dense(&[2, 2], Priority::Normal));
        let (j2, _rx2) = job(dense(&[3, 3], Priority::Normal));
        assert!(scheduler.try_push(j1, 0).is_ok());
        assert!(scheduler.try_push(j2, 1).is_ok());
        // Full: the job comes back untouched, with the refusal reason.
        let (j3, _rx3) = job(dense(&[2, 3], Priority::Normal));
        let (returned, refusal) = scheduler.try_push(j3, 2).unwrap_err();
        assert_eq!(refusal, PushRefusal::Full { depth: 2, limit: 2 });
        assert_eq!(returned.request.dims.as_slice(), &[2, 3]);
        assert_eq!(scheduler.len(), 2);
        assert_eq!(scheduler.high_watermark(), 2);
        // Popping frees a slot; admission resumes.
        assert!(scheduler.pop().is_some());
        assert!(scheduler.try_push(returned, 3).is_ok());
        assert_eq!(scheduler.high_watermark(), 2, "watermark is a maximum");
    }

    #[test]
    fn blocking_push_parks_until_space_frees() {
        let scheduler = scheduler(SchedulingPolicy::Fifo, Some(1));
        let (j1, _rx1) = job(dense(&[2, 2], Priority::Normal));
        scheduler.push(j1, 0);
        std::thread::scope(|s| {
            let pusher = s.spawn(|| {
                let (j2, rx2) = job(dense(&[3, 3], Priority::Normal));
                // Parks: the queue is full until the main thread pops.
                scheduler.push(j2, 1);
                rx2
            });
            // Pop one job; the parked pusher must wake and enqueue.
            assert!(scheduler.pop().is_some());
            let _rx2 = pusher.join().unwrap();
            assert_eq!(scheduler.len(), 1);
        });
    }

    /// Parks `count` blocking pushers one at a time (each with a
    /// distinguishable register width so admission order is observable)
    /// and returns once all of them hold tickets.
    fn park_pushers<'s>(
        s: &'s std::thread::Scope<'s, '_>,
        scheduler: &'s Scheduler,
        count: usize,
        first_seq: u64,
    ) -> Vec<std::thread::ScopedJoinHandle<'s, ()>> {
        let mut pushers = Vec::new();
        for i in 0..count {
            let shape = vec![2; i + 2]; // widths 2, 3, 4, … identify order
            pushers.push(s.spawn(move || {
                let (j, _rx) = job(dense(&shape, Priority::Normal));
                scheduler.push(j, first_seq + i as u64);
            }));
            // Tickets are handed out at park time, so admission order is
            // pinned by parking the submitters strictly one after another.
            while scheduler.parked() < i + 1 {
                std::thread::yield_now();
            }
        }
        pushers
    }

    #[test]
    fn parked_pushers_admit_in_ticket_order_and_try_push_never_steals() {
        // FIFO policy so pop order == enqueue order: the widths observed
        // by pop directly expose the admission order of the parked
        // pushers.
        let scheduler = scheduler(SchedulingPolicy::Fifo, Some(1));
        let (filler, _rx) = job(dense(&[5], Priority::Normal));
        scheduler.push(filler, 0);
        std::thread::scope(|s| {
            let pushers = park_pushers(s, &scheduler, 3, 1);
            // With three ticket holders parked, a non-blocking probe must
            // be refused even while pops free slots — the freed slots are
            // owed to the tickets, in order.
            let mut widths = vec![scheduler.pop().expect("filler").request.dims.len()];
            for _ in 0..3 {
                loop {
                    let (probe, _prx) = job(dense(&[7], Priority::Normal));
                    match scheduler.try_push(probe, 99) {
                        Err((_, PushRefusal::Full { .. })) => {}
                        Err((_, refusal)) => {
                            panic!("probe must be refused as Full, got {refusal:?}")
                        }
                        Ok(()) => panic!("probe must be refused while tickets wait"),
                    }
                    // The owed ticket holder has admitted once the queue
                    // holds its job again; pop it and move to the next.
                    if scheduler.len() == 1 && scheduler.parked() < 3 {
                        break;
                    }
                    std::thread::yield_now();
                }
                widths.push(scheduler.pop().expect("admitted job").request.dims.len());
            }
            for pusher in pushers {
                pusher.join().unwrap();
            }
            assert_eq!(
                widths,
                vec![1, 2, 3, 4],
                "parked submitters admit strictly in ticket (arrival) order"
            );
            assert_eq!(scheduler.parked(), 0);
            // With no tickets outstanding and a free slot, probes admit
            // again.
            let (probe, _prx) = job(dense(&[7], Priority::Normal));
            assert!(scheduler.try_push(probe, 100).is_ok());
        });
    }

    #[test]
    fn close_wakes_every_parked_ticket_holder() {
        let scheduler = scheduler(SchedulingPolicy::Fifo, Some(1));
        let (j1, _rx1) = job(dense(&[2, 2], Priority::Normal));
        scheduler.push(j1, 0);
        std::thread::scope(|s| {
            let mut receivers = Vec::new();
            for i in 0..3u64 {
                let (j, rx) = job(dense(&[3, 3], Priority::Normal));
                receivers.push(rx);
                let sched = &scheduler;
                s.spawn(move || sched.push(j, 1 + i));
                while scheduler.parked() < (i + 1) as usize {
                    std::thread::yield_now();
                }
            }
            // Close: every ticket holder — first in line or last — must
            // wake and reject its job rather than wait for space forever.
            scheduler.close();
            for rx in &receivers {
                assert!(matches!(rx.recv().unwrap(), Err(EngineError::QueueClosed)));
            }
        });
        assert_eq!(scheduler.parked(), 0, "no ticket holder is left parked");
    }

    #[test]
    fn abort_wakes_every_parked_ticket_holder() {
        let scheduler = scheduler(SchedulingPolicy::SizeAware, Some(1));
        let (j1, rx1) = job(dense(&[2, 2], Priority::Normal));
        scheduler.push(j1, 0);
        std::thread::scope(|s| {
            let mut receivers = Vec::new();
            for i in 0..2u64 {
                let (j, rx) = job(dense(&[3, 3], Priority::Normal));
                receivers.push(rx);
                let sched = &scheduler;
                s.spawn(move || sched.push(j, 1 + i));
                while scheduler.parked() < (i + 1) as usize {
                    std::thread::yield_now();
                }
            }
            scheduler.abort();
            // The queued job resolves to Shutdown; the parked ones to
            // QueueClosed (they were never queued).
            assert!(matches!(rx1.recv().unwrap(), Err(EngineError::Shutdown)));
            for rx in &receivers {
                assert!(matches!(rx.recv().unwrap(), Err(EngineError::QueueClosed)));
            }
        });
        assert_eq!(scheduler.parked(), 0);
    }

    #[test]
    fn zero_depth_is_clamped_to_one() {
        let scheduler = scheduler(SchedulingPolicy::Fifo, Some(0));
        let (j1, _rx1) = job(dense(&[2, 2], Priority::Normal));
        assert!(scheduler.try_push(j1, 0).is_ok(), "one slot always exists");
        let (j2, _rx2) = job(dense(&[3, 3], Priority::Normal));
        assert!(matches!(
            scheduler.try_push(j2, 1),
            Err((_, PushRefusal::Full { limit: 1, .. }))
        ));
    }

    #[test]
    fn try_push_after_close_reports_closed() {
        let scheduler = scheduler(SchedulingPolicy::Fifo, None);
        scheduler.close();
        let (j, _rx) = job(dense(&[2, 2], Priority::Normal));
        assert!(matches!(
            scheduler.try_push(j, 0),
            Err((_, PushRefusal::Closed))
        ));
    }

    #[test]
    fn close_drains_before_exit() {
        let scheduler = scheduler(SchedulingPolicy::Fifo, None);
        let (j, _rx) = job(dense(&[2, 2], Priority::Normal));
        scheduler.push(j, 0);
        scheduler.close();
        assert!(scheduler.pop().is_some(), "queued job survives close");
        assert!(scheduler.pop().is_none(), "then the worker exits");
    }
}
