//! The serving side: a [`WireServer`] that listens on TCP or a unix
//! socket, reads enveloped `mdqwire` request frames on a bounded pool of
//! handler threads, drives them through a [`Backend`], and writes back
//! exactly one report or error frame per request.
//!
//! Everything is std: a nonblocking accept loop polled against a stop
//! flag, a bounded `sync_channel` handing accepted connections to the
//! pool (so a connection flood backpressures into the kernel's listen
//! queue instead of spawning unbounded threads), and per-connection
//! socket deadlines doing double duty as the slow-loris guard.

use std::fs;
use std::io;
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use mdq_engine::wire::{ErrorFrame, Frame, ReportFrame, RequestFrame};
use mdq_engine::{AdmissionError, EngineService};
use mdq_router::{Router, RouterError, TenantId};

use crate::error::TransportError;
use crate::frame::{write_frame, FrameReader};
use crate::stream::{ServerAddr, Transport, WireStream};

/// What a [`WireServer`] serves: one engine, or a sharded router.
///
/// The request→reply mapping is the hand-back-by-value refusal idiom
/// made remote: `QueueFull`, `TenantOverQuota`, `NoShards` come back as
/// typed error frames, and the *client* still holds the original request
/// bytes to resubmit — nothing about a refusal is lost in transit.
#[derive(Debug)]
pub enum Backend {
    /// A single engine — one shard, no tenancy.
    Service(EngineService),
    /// A sharded router; the request frame's tenant id (0 when absent)
    /// selects the quota ledger. Boxed: a `Router` is an order of
    /// magnitude larger than an `EngineService` handle.
    Router(Box<Router>),
}

impl Backend {
    /// The router, when this backend is one.
    #[must_use]
    pub fn router(&self) -> Option<&Router> {
        match self {
            Backend::Router(router) => Some(router.as_ref()),
            Backend::Service(_) => None,
        }
    }

    /// The engine, when this backend is one.
    #[must_use]
    pub fn service(&self) -> Option<&EngineService> {
        match self {
            Backend::Service(service) => Some(service),
            Backend::Router(_) => None,
        }
    }

    /// Runs one request to its terminal frame: a report, or a typed
    /// error. Blocks for the job's duration — the caller is a handler
    /// thread whose whole purpose is to wait here.
    #[must_use]
    pub fn serve(&self, frame: RequestFrame) -> Frame {
        let dims = frame.request.dims.clone();
        match self {
            Backend::Service(service) => match service.try_submit(frame.request) {
                Ok(handle) => match handle.wait() {
                    Ok(report) => Frame::Report(ReportFrame { dims, report }),
                    Err(e) => Frame::Error(ErrorFrame::from_engine(&e)),
                },
                Err(AdmissionError { error, .. }) => Frame::Error(ErrorFrame::from_engine(&error)),
            },
            Backend::Router(router) => {
                let tenant = TenantId(frame.tenant.unwrap_or(0));
                match router.submit(tenant, frame.request) {
                    Ok(handle) => match handle.wait() {
                        Ok(report) => Frame::Report(ReportFrame { dims, report }),
                        Err(e) => Frame::Error(ErrorFrame::from_engine(&e)),
                    },
                    Err(RouterError::TenantOverQuota {
                        tenant,
                        in_flight,
                        limit,
                        ..
                    }) => Frame::Error(ErrorFrame::TenantOverQuota {
                        tenant: tenant.0,
                        in_flight,
                        limit,
                    }),
                    Err(RouterError::NoShards { .. }) => Frame::Error(ErrorFrame::NoShards),
                    Err(RouterError::ShardRefused { error, .. }) => {
                        Frame::Error(ErrorFrame::from_engine(&error))
                    }
                }
            }
        }
    }

    /// Shuts the backend down gracefully — the engine path drains its
    /// queue; the router path also writes per-shard warm snapshots when
    /// configured, which is what makes a killed-and-restarted remote
    /// shard start warm.
    pub fn shutdown(self) {
        match self {
            Backend::Service(service) => service.shutdown(),
            Backend::Router(router) => router.shutdown(),
        }
    }
}

/// Tuning for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    handler_threads: usize,
    pending_connections: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            handler_threads: 4,
            pending_connections: 16,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_frame_bytes: 16 << 20,
        }
    }
}

impl ServerConfig {
    /// The defaults: 4 handler threads, 16 pending connections, 5 s
    /// read/write deadlines, 16 MiB frame guard.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Size of the handler pool (minimum 1). Each in-flight connection
    /// occupies one handler for the duration of its current request.
    #[must_use]
    pub fn with_handler_threads(mut self, threads: usize) -> Self {
        self.handler_threads = threads.max(1);
        self
    }

    /// How many accepted-but-unclaimed connections may queue between
    /// the accept loop and the pool (minimum 1) before accepting stalls.
    #[must_use]
    pub fn with_pending_connections(mut self, depth: usize) -> Self {
        self.pending_connections = depth.max(1);
        self
    }

    /// Per-connection read deadline — also the slow-loris guard: a peer
    /// that dribbles a frame slower than this gets closed, not waited
    /// on.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Per-connection write deadline.
    #[must_use]
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Largest request payload the server will buffer; bigger
    /// declarations are refused before allocation with a `bad-frame`
    /// error reply.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, limit: usize) -> Self {
        self.max_frame_bytes = limit;
        self
    }
}

/// Counters a running server exposes; cheap relaxed atomics, snapshot
/// via [`WireServer::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Report frames served.
    pub reports: u64,
    /// Error frames served (service refusals and failures).
    pub error_replies: u64,
    /// Connections dropped for unparseable bytes (bad envelope,
    /// checksum mismatch, non-request frame, wire parse failure).
    pub bad_frames: u64,
    /// Connections closed by the read deadline (slow-loris, idle).
    pub timeouts: u64,
    /// Connections refused for declaring an over-limit frame.
    pub oversized: u64,
}

#[derive(Debug, Default)]
struct StatsInner {
    accepted: AtomicU64,
    reports: AtomicU64,
    error_replies: AtomicU64,
    bad_frames: AtomicU64,
    timeouts: AtomicU64,
    oversized: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            reports: self.reports.load(Ordering::Relaxed),
            error_replies: self.error_replies.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            oversized: self.oversized.load(Ordering::Relaxed),
        }
    }
}

/// The listening half, unified over TCP and unix sockets.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<WireStream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| WireStream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| WireStream::Unix(s)),
        }
    }
}

/// A serving `mdqwire` endpoint over TCP or a unix socket.
///
/// Owns its [`Backend`]: [`shutdown`](Self::shutdown) stops accepting,
/// drains in-flight connections (every request already being served gets
/// its reply), joins the pool, and then shuts the backend down — which
/// snapshots router shards so a restart on the same address starts warm.
pub struct WireServer {
    backend: Option<Arc<Backend>>,
    addr: ServerAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
    stats: Arc<StatsInner>,
    unix_path: Option<PathBuf>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.addr)
            .field("handlers", &self.handlers.len())
            .finish()
    }
}

impl WireServer {
    /// Binds and starts serving immediately.
    ///
    /// TCP port 0 resolves to a kernel-assigned port (see
    /// [`local_addr`](Self::local_addr)); a unix path unlinks any stale
    /// socket file first, so kill-and-rebind on the same path works.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when the bind itself fails (address in
    /// use, permission, bad path).
    pub fn bind(
        addr: &ServerAddr,
        backend: Backend,
        config: ServerConfig,
    ) -> Result<Self, TransportError> {
        let mut unix_path = None;
        let (listener, bound) = match addr {
            ServerAddr::Tcp(sa) => {
                let listener = TcpListener::bind(sa).map_err(TransportError::Io)?;
                listener.set_nonblocking(true).map_err(TransportError::Io)?;
                let local = listener.local_addr().map_err(TransportError::Io)?;
                (Listener::Tcp(listener), ServerAddr::Tcp(local))
            }
            #[cfg(unix)]
            ServerAddr::Unix(path) => {
                match fs::remove_file(path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(TransportError::Io(e)),
                }
                let listener = UnixListener::bind(path).map_err(TransportError::Io)?;
                listener.set_nonblocking(true).map_err(TransportError::Io)?;
                unix_path = Some(path.clone());
                (Listener::Unix(listener), ServerAddr::Unix(path.clone()))
            }
        };

        let backend = Arc::new(backend);
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let (tx, rx) = sync_channel::<WireStream>(config.pending_connections);
        let rx = Arc::new(Mutex::new(rx));

        let accept = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            thread::spawn(move || accept_loop(&listener, &tx, &stop, &stats))
        };
        let handlers = (0..config.handler_threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let backend = Arc::clone(&backend);
                let config = config.clone();
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                thread::spawn(move || handler_loop(&rx, &backend, &config, &stop, &stats))
            })
            .collect();

        Ok(WireServer {
            backend: Some(backend),
            addr: bound,
            stop,
            accept: Some(accept),
            handlers,
            stats,
            unix_path,
        })
    }

    /// The bound address — with the kernel-assigned port resolved, when
    /// TCP port 0 was requested.
    #[must_use]
    pub fn local_addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// The live backend, for quota edits and stats mid-serve.
    #[must_use]
    pub fn backend(&self) -> &Backend {
        self.backend.as_ref().expect("backend lives until shutdown")
    }

    /// A snapshot of the serving counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Stops accepting, drains in-flight connections, joins the pool,
    /// and shuts the backend down gracefully (router shards write their
    /// warm snapshots here).
    pub fn shutdown(self) {
        if let Some(backend) = self.drain_and_take() {
            backend.shutdown();
        }
    }

    /// Like [`shutdown`](Self::shutdown), but hands the still-running
    /// backend back instead of stopping it — for handing the same
    /// router to a fresh listener.
    #[must_use]
    pub fn into_backend(self) -> Backend {
        self.drain_and_take().expect("backend lives until shutdown")
    }

    /// Stops threads and recovers sole ownership of the backend.
    fn drain_and_take(mut self) -> Option<Backend> {
        self.drain();
        let backend = self.backend.take()?;
        drop(self);
        // All handler threads are joined, so theirs were the only other
        // clones.
        Some(Arc::try_unwrap(backend).unwrap_or_else(|_| panic!("backend Arc leaked")))
    }

    /// Stops the accept loop and joins every thread. Idempotent.
    fn drain(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.handlers.drain(..) {
            let _ = handle.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = fs::remove_file(path);
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Polls the nonblocking listener against the stop flag; hands accepted
/// streams to the bounded pool channel (blocking when the pool is
/// saturated — backpressure, not unbounded memory).
fn accept_loop(
    listener: &Listener,
    tx: &SyncSender<WireStream>,
    stop: &AtomicBool,
    stats: &StatsInner,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
    // Dropping `tx` closes the channel; handlers drain what's queued
    // and exit.
}

/// One pool thread: claim a connection, serve it to completion, repeat
/// until the channel closes.
fn handler_loop(
    rx: &Mutex<Receiver<WireStream>>,
    backend: &Backend,
    config: &ServerConfig,
    stop: &AtomicBool,
    stats: &StatsInner,
) {
    loop {
        let next = {
            let guard = rx.lock().expect("connection queue poisoned");
            guard.recv()
        };
        let Ok(stream) = next else { break };
        handle_connection(stream, backend, config, stop, stats);
    }
}

/// Serves one connection: frames in, replies out, until EOF, a
/// deadline, unparseable bytes, or shutdown.
fn handle_connection(
    mut stream: WireStream,
    backend: &Backend,
    config: &ServerConfig,
    stop: &AtomicBool,
    stats: &StatsInner,
) {
    if stream
        .set_timeouts(Some(config.read_timeout), Some(config.write_timeout))
        .is_err()
    {
        return;
    }
    let mut reader = FrameReader::new(config.max_frame_bytes);
    loop {
        // Between frames is the drain point: a request already being
        // served always gets its reply; the *next* frame does not start
        // once shutdown is underway.
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_frame(&mut stream) {
            Ok(Some(text)) => match Frame::parse(&text) {
                Ok(Frame::Request(request)) => {
                    let reply = backend.serve(request);
                    match &reply {
                        Frame::Report(_) => stats.reports.fetch_add(1, Ordering::Relaxed),
                        _ => stats.error_replies.fetch_add(1, Ordering::Relaxed),
                    };
                    if write_frame(&mut stream, &reply).is_err() {
                        break;
                    }
                }
                Ok(_) => {
                    stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    reply_bad_frame(&mut stream, "expected a request frame");
                    break;
                }
                Err(e) => {
                    stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                    reply_bad_frame(&mut stream, &e.to_string());
                    break;
                }
            },
            Ok(None) => break,
            Err(TransportError::Timeout) => {
                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(TransportError::FrameTooLarge { declared, limit }) => {
                stats.oversized.fetch_add(1, Ordering::Relaxed);
                reply_bad_frame(
                    &mut stream,
                    &format!("frame of {declared} bytes exceeds the {limit}-byte guard"),
                );
                break;
            }
            Err(
                e @ (TransportError::BadEnvelope { .. } | TransportError::ChecksumMismatch { .. }),
            ) => {
                stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                reply_bad_frame(&mut stream, &e.to_string());
                break;
            }
            Err(_) => break,
        }
    }
    let _ = stream.shutdown();
}

/// Best-effort `bad-frame` reply; the connection closes right after, so
/// a failed write loses nothing the peer could have used.
fn reply_bad_frame(stream: &mut WireStream, message: &str) {
    let frame = Frame::Error(ErrorFrame::BadFrame {
        message: message.to_owned(),
    });
    let _ = write_frame(stream, &frame);
}

// The server is shared by reference (stats, backend access) while its
// threads run; everything it hands across threads is audited here.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<WireServer>();
    assert_send_sync::<ServerConfig>();
    assert_send_sync::<ServerStats>();
    assert_send_sync::<Backend>();
};
