//! Deterministic fault injection for transport tests.
//!
//! [`FaultyStream`] wraps any [`Transport`] and misbehaves on cue:
//! writes split into tiny chunks, a byte XOR-flipped at an exact offset,
//! the connection cut after exactly N bytes, a stall long enough to trip
//! the peer's read deadline. Faults are a plain data `Vec<Fault>` — no
//! randomness inside the stream — so a failing schedule reproduces
//! byte-for-byte from its seed. [`FaultPlan`] derives per-connection
//! schedules from a seed with a splitmix-style hash, cycling through
//! fault classes and guaranteeing periodic clean connections so a
//! retrying client always makes progress.

use std::io::{self, Read, Write};
use std::thread;
use std::time::Duration;

use crate::stream::Transport;

/// One scheduled misbehavior. Offsets are absolute byte positions in
/// the connection's write (or read) stream, starting at 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Split every write into chunks of at most `max` bytes — the
    /// "partial writes" regime that flushes out framing code which
    /// assumes one write lands as one read.
    ChunkWrites {
        /// Largest number of bytes a single inner write may carry.
        max: usize,
    },
    /// XOR the written byte at absolute offset `at` with `xor`
    /// (non-zero, or the fault would be a no-op).
    CorruptWrite {
        /// Absolute write offset of the byte to corrupt.
        at: u64,
        /// The flip mask.
        xor: u8,
    },
    /// After exactly `bytes` written bytes, shut the socket down and
    /// fail the write — a mid-frame disconnect the peer sees as EOF.
    CutWriteAfter {
        /// How many bytes are allowed through before the cut.
        bytes: u64,
    },
    /// Sleep `delay` before writing the byte at offset `at` — the
    /// slow-loris half of a request, aimed at the peer's read deadline.
    StallWrite {
        /// Absolute write offset at which to stall.
        at: u64,
        /// How long to stall.
        delay: Duration,
    },
    /// XOR the byte read at absolute offset `at` with `xor` — corrupts
    /// the peer's reply without touching the request path.
    CorruptRead {
        /// Absolute read offset of the byte to corrupt.
        at: u64,
        /// The flip mask.
        xor: u8,
    },
    /// After exactly `bytes` read bytes, report EOF — the tail of the
    /// reply goes missing.
    CutReadAfter {
        /// How many bytes are allowed through before the cut.
        bytes: u64,
    },
}

/// A [`Transport`] that executes a deterministic fault schedule.
///
/// Wraps the real stream on the *client* side in tests, so the genuine
/// `WireClient` retry path — not a mock — is what gets exercised.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    faults: Vec<Fault>,
    written: u64,
    read: u64,
    write_cut: bool,
    read_cut: bool,
}

impl<S: Transport> FaultyStream<S> {
    /// Wraps `inner` with a schedule. An empty schedule is a perfectly
    /// clean connection.
    pub fn new(inner: S, faults: Vec<Fault>) -> Self {
        FaultyStream {
            inner,
            faults,
            written: 0,
            read: 0,
            write_cut: false,
            read_cut: false,
        }
    }

    /// Total bytes written through (post-fault accounting).
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Total bytes read through.
    #[must_use]
    pub fn read_bytes(&self) -> u64 {
        self.read
    }

    /// The wrapped stream.
    #[must_use]
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Unwraps, discarding any not-yet-fired faults.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Largest prefix of a `len`-byte write that stays on the near side
    /// of the next cut boundary, chunk limit included.
    fn write_budget(&self, len: usize) -> usize {
        let mut budget = len;
        for fault in &self.faults {
            match *fault {
                Fault::ChunkWrites { max } => budget = budget.min(max.max(1)),
                Fault::CutWriteAfter { bytes } => {
                    let remaining = bytes.saturating_sub(self.written);
                    budget = budget.min(usize::try_from(remaining).unwrap_or(usize::MAX));
                }
                _ => {}
            }
        }
        budget
    }
}

impl<S: Transport> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.read_cut {
            return Ok(0);
        }
        // Cap the read so cut boundaries land exactly, then fire any
        // stall scheduled at the current offset before touching the
        // socket.
        let mut budget = buf.len();
        for fault in &self.faults {
            if let Fault::CutReadAfter { bytes } = *fault {
                let remaining = bytes.saturating_sub(self.read);
                budget = budget.min(usize::try_from(remaining).unwrap_or(usize::MAX));
            }
        }
        if budget == 0 {
            self.read_cut = true;
            let _ = self.inner.shutdown();
            return Ok(0);
        }
        let n = self.inner.read(&mut buf[..budget])?;
        for fault in &self.faults {
            if let Fault::CorruptRead { at, xor } = *fault {
                if at >= self.read && at < self.read + n as u64 {
                    let idx = usize::try_from(at - self.read).expect("offset fits");
                    buf[idx] ^= xor;
                }
            }
        }
        self.read += n as u64;
        Ok(n)
    }
}

impl<S: Transport> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.write_cut {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection cut by fault schedule",
            ));
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let budget = self.write_budget(buf.len());
        if budget == 0 {
            // The cut boundary has been reached: make the peer see a
            // genuine mid-frame EOF, then fail this and every later
            // write.
            self.write_cut = true;
            let _ = self.inner.shutdown();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection cut by fault schedule",
            ));
        }
        let mut stall = None;
        for fault in &self.faults {
            if let Fault::StallWrite { at, delay } = *fault {
                if at >= self.written && at < self.written + budget as u64 {
                    stall = Some(delay);
                }
            }
        }
        if let Some(delay) = stall {
            thread::sleep(delay);
        }
        let mut chunk = buf[..budget].to_vec();
        for fault in &self.faults {
            if let Fault::CorruptWrite { at, xor } = *fault {
                if at >= self.written && at < self.written + budget as u64 {
                    let idx = usize::try_from(at - self.written).expect("offset fits");
                    chunk[idx] ^= xor;
                }
            }
        }
        let n = self.inner.write(&chunk)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: Transport> Transport for FaultyStream<S> {
    fn shutdown(&self) -> io::Result<()> {
        self.inner.shutdown()
    }
}

/// A seeded generator of per-connection fault schedules.
///
/// Connection `i`'s schedule is a pure function of `(seed, i)`: replays
/// are exact, and two clients with different seeds flood differently.
/// Every `clean_period`-th connection is guaranteed fault-free, so a
/// client whose retry budget exceeds `clean_period` always lands a
/// request eventually.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    clean_period: u64,
    stall: Duration,
}

impl FaultPlan {
    /// A plan with the default guarantees: every 3rd connection clean,
    /// stalls of 50 ms.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            clean_period: 3,
            stall: Duration::from_millis(50),
        }
    }

    /// Sets how long [`Fault::StallWrite`] sleeps. Pick something
    /// comfortably above the server's read timeout to reliably exercise
    /// the slow-loris path.
    #[must_use]
    pub fn with_stall(mut self, stall: Duration) -> Self {
        self.stall = stall;
        self
    }

    /// Guarantees every `period`-th connection is clean (minimum 1,
    /// which makes *every* connection clean).
    #[must_use]
    pub fn with_clean_period(mut self, period: u64) -> Self {
        self.clean_period = period.max(1);
        self
    }

    /// The deterministic schedule for connection number `connection`
    /// (0-based, as counted by [`WireClient`](crate::WireClient)).
    #[must_use]
    pub fn faults_for(&self, connection: u64) -> Vec<Fault> {
        if connection % self.clean_period == self.clean_period - 1 {
            return Vec::new();
        }
        let r = mix(self.seed, connection);
        let detail = mix(r, 0x9e37_79b9_7f4a_7c15);
        match r % 5 {
            // Partial writes only: correct but maximally fragmented.
            0 => vec![Fault::ChunkWrites {
                max: 1 + usize::try_from(detail % 7).expect("small"),
            }],
            // One corrupted request byte, fragmented for good measure.
            1 => vec![
                Fault::CorruptWrite {
                    at: detail % 192,
                    xor: 1 + u8::try_from((detail >> 32) & 0xfe).expect("masked"),
                },
                Fault::ChunkWrites { max: 11 },
            ],
            // Mid-frame disconnect while sending.
            2 => vec![Fault::CutWriteAfter {
                bytes: detail % 160,
            }],
            // Slow-loris: stall mid-request past the server's deadline.
            3 => vec![Fault::StallWrite {
                at: detail % 48,
                delay: self.stall,
            }],
            // Lose or corrupt the reply instead of the request.
            _ => {
                if detail & 1 == 0 {
                    vec![Fault::CutReadAfter { bytes: detail % 96 }]
                } else {
                    vec![Fault::CorruptRead {
                        at: detail % 96,
                        xor: 0x40,
                    }]
                }
            }
        }
    }
}

/// splitmix64-style avalanche of `seed` and `stream`.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::WireStream;

    #[test]
    fn chunked_writes_split_but_deliver_everything() {
        let (a, mut b) = WireStream::pair().expect("socketpair");
        let mut faulty = FaultyStream::new(a, vec![Fault::ChunkWrites { max: 3 }]);
        let payload = b"0123456789abcdef";
        faulty.write_all(payload).expect("write through chunks");
        assert_eq!(faulty.written(), payload.len() as u64);
        drop(faulty);
        let mut got = Vec::new();
        b.read_to_end(&mut got).expect("read");
        assert_eq!(got, payload);
    }

    #[test]
    fn corrupt_write_flips_exactly_one_byte() {
        let (a, mut b) = WireStream::pair().expect("socketpair");
        let mut faulty = FaultyStream::new(
            a,
            vec![
                Fault::CorruptWrite { at: 5, xor: 0xff },
                Fault::ChunkWrites { max: 2 },
            ],
        );
        let payload = b"0123456789";
        faulty.write_all(payload).expect("write");
        drop(faulty);
        let mut got = Vec::new();
        b.read_to_end(&mut got).expect("read");
        let mut expected = payload.to_vec();
        expected[5] ^= 0xff;
        assert_eq!(got, expected);
    }

    #[test]
    fn cut_write_delivers_exact_prefix_then_breaks_pipe() {
        let (a, mut b) = WireStream::pair().expect("socketpair");
        let mut faulty = FaultyStream::new(a, vec![Fault::CutWriteAfter { bytes: 7 }]);
        let err = faulty.write_all(b"0123456789").expect_err("cut");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let mut got = Vec::new();
        b.read_to_end(&mut got).expect("peer sees EOF after prefix");
        assert_eq!(got, b"0123456");
        // Later writes stay broken.
        assert!(faulty.write_all(b"x").is_err());
    }

    #[test]
    fn cut_read_reports_eof_after_exact_prefix() {
        let (a, mut b) = WireStream::pair().expect("socketpair");
        b.write_all(b"0123456789").expect("write");
        drop(b);
        let mut faulty = FaultyStream::new(a, vec![Fault::CutReadAfter { bytes: 4 }]);
        let mut got = Vec::new();
        faulty.read_to_end(&mut got).expect("EOF, not error");
        assert_eq!(got, b"0123");
    }

    #[test]
    fn plans_are_deterministic_and_guarantee_clean_connections() {
        let plan = FaultPlan::new(42).with_clean_period(3);
        for connection in 0..32 {
            assert_eq!(
                plan.faults_for(connection),
                plan.faults_for(connection),
                "schedule must replay identically"
            );
        }
        assert!(plan.faults_for(2).is_empty());
        assert!(plan.faults_for(5).is_empty());
        assert!(plan.faults_for(29).is_empty());
        // Different seeds produce different-looking floods.
        let other = FaultPlan::new(43).with_clean_period(3);
        let differs = (0..32).any(|c| plan.faults_for(c) != other.faults_for(c));
        assert!(differs);
    }
}
