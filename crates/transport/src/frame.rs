//! The network envelope around `mdqwire` frames.
//!
//! `mdqwire` text is self-delimiting (a frame ends at its `end` line),
//! but a socket is not a trustworthy narrator: bytes arrive in arbitrary
//! chunks, may be cut mid-frame, and may be corrupted in flight. The
//! transport therefore wraps each frame in a one-line envelope —
//! length-delimited *and* newline-terminated:
//!
//! ```text
//! mdqtx <payload-bytes> <fnv1a64-hex16>\n
//! <payload: exactly payload-bytes bytes of one mdqwire frame>
//! ```
//!
//! The declared length lets the reader enforce the max-frame-size guard
//! *before* buffering a hostile payload, and the FNV-1a checksum turns
//! in-flight corruption into a typed
//! [`ChecksumMismatch`](TransportError::ChecksumMismatch) instead of —
//! worst case — a silently different but still-parseable request.
//! Because FNV-1a folds each byte with XOR and then multiplies by an odd
//! (hence invertible mod 2⁶⁴) prime, two payloads differing in exactly
//! one byte can never share a checksum: single-byte corruption is caught
//! deterministically, not probabilistically.

use std::io::{self, Read, Write};

use mdq_circuit::serialize;
use mdq_engine::wire::Frame;

use crate::error::TransportError;

/// Envelope header prefix, `b"mdqtx "`.
const HEADER_PREFIX: &[u8] = b"mdqtx ";

/// Longest legal header line: prefix + 20-digit length + space + 16 hex
/// digits + newline, rounded up. A stream that produces no newline
/// within this many bytes is not speaking the protocol.
const HEADER_MAX: usize = 64;

/// How many bytes one socket read asks for.
const READ_CHUNK: usize = 16 * 1024;

/// FNV-1a over `bytes` — the envelope checksum.
///
/// The same hash family the router's ring and the engine's cache keys
/// use; duplicated here only in its plain byte-slice form.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes `frame` and writes it to `stream` under one envelope, as a
/// single vectored-into-one buffer write followed by a flush.
///
/// # Errors
///
/// [`TransportError::Wire`] when the frame itself cannot serialize
/// (non-serializable gate), [`TransportError::Timeout`] when the socket's
/// write deadline passes, [`TransportError::Io`] for everything else the
/// socket reports.
pub fn write_frame<S: Write + ?Sized>(stream: &mut S, frame: &Frame) -> Result<(), TransportError> {
    let text = frame.to_text()?;
    let payload = text.as_bytes();
    let header = format!(
        "mdqtx {} {}\n",
        payload.len(),
        serialize::bits_to_hex(checksum(payload))
    );
    let mut envelope = Vec::with_capacity(header.len() + payload.len());
    envelope.extend_from_slice(header.as_bytes());
    envelope.extend_from_slice(payload);
    stream.write_all(&envelope)?;
    stream.flush()?;
    Ok(())
}

/// A buffered envelope reader for one connection.
///
/// Owns the read buffer so partially-arrived frames survive across
/// calls; [`read_frame`](Self::read_frame) returns one verified frame
/// text at a time. The reader never trusts the peer: header length is
/// bounded, declared payload size is checked against the guard before
/// buffering, and the checksum is verified before the text is handed to
/// [`Frame::parse`].
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    limit: usize,
}

/// What the header of a buffered envelope said, if it has fully arrived.
enum Header {
    /// Header complete: payload starts at `payload_at` and runs
    /// `length` bytes, promising `sum`.
    Complete {
        payload_at: usize,
        length: usize,
        sum: u64,
    },
    /// Not enough bytes yet to finish the header line.
    Partial,
}

impl FrameReader {
    /// A reader enforcing `max_frame_bytes` on declared payload sizes.
    #[must_use]
    pub fn new(max_frame_bytes: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            limit: max_frame_bytes,
        }
    }

    /// Drops any buffered bytes — required after a reconnect, where
    /// leftovers from the dead connection would desynchronize framing.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Bytes buffered but not yet returned as a frame.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Reads until one whole envelope has arrived and returns its
    /// verified payload text; `Ok(None)` is a clean EOF *between*
    /// frames.
    ///
    /// # Errors
    ///
    /// - [`TransportError::ConnectionClosed`] — EOF mid-envelope.
    /// - [`TransportError::Timeout`] — the socket's read deadline passed
    ///   (the server's slow-loris guard).
    /// - [`TransportError::FrameTooLarge`] — declared payload exceeds
    ///   the guard.
    /// - [`TransportError::BadEnvelope`] — header unparseable, or
    ///   payload not UTF-8.
    /// - [`TransportError::ChecksumMismatch`] — payload bytes differ
    ///   from what the sender framed.
    /// - [`TransportError::Io`] — anything else the socket reports.
    pub fn read_frame<S: Read + ?Sized>(
        &mut self,
        stream: &mut S,
    ) -> Result<Option<String>, TransportError> {
        loop {
            if let Header::Complete {
                payload_at,
                length,
                sum,
            } = self.parse_header()?
            {
                if self.buf.len() >= payload_at + length {
                    return self.take_payload(payload_at, length, sum).map(Some);
                }
            }
            let mut chunk = [0u8; READ_CHUNK];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(None);
                    }
                    return Err(TransportError::ConnectionClosed);
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::from_io(e)),
            }
        }
    }

    /// Parses the envelope header at the front of the buffer, if its
    /// newline has arrived.
    fn parse_header(&self) -> Result<Header, TransportError> {
        let Some(newline) = self.buf.iter().take(HEADER_MAX).position(|&b| b == b'\n') else {
            if self.buf.len() >= HEADER_MAX {
                return Err(TransportError::BadEnvelope {
                    message: format!("no newline within the first {HEADER_MAX} header bytes"),
                });
            }
            return Ok(Header::Partial);
        };
        let line = &self.buf[..newline];
        let Some(rest) = line.strip_prefix(HEADER_PREFIX) else {
            return Err(TransportError::BadEnvelope {
                message: "header line does not start with `mdqtx `".to_owned(),
            });
        };
        // Header is ASCII by construction; any non-UTF-8 byte also fails
        // the prefix or field checks below.
        let rest = std::str::from_utf8(rest).map_err(|_| TransportError::BadEnvelope {
            message: "header line is not valid UTF-8".to_owned(),
        })?;
        let mut fields = rest.split(' ');
        let (Some(len_token), Some(sum_token), None) =
            (fields.next(), fields.next(), fields.next())
        else {
            return Err(TransportError::BadEnvelope {
                message: "header needs exactly `mdqtx <len> <checksum>`".to_owned(),
            });
        };
        let length = parse_length(len_token).ok_or_else(|| TransportError::BadEnvelope {
            message: format!("bad payload length {len_token:?}"),
        })?;
        if length > self.limit {
            return Err(TransportError::FrameTooLarge {
                declared: length,
                limit: self.limit,
            });
        }
        let sum = parse_checksum(sum_token).ok_or_else(|| TransportError::BadEnvelope {
            message: format!("bad checksum token {sum_token:?}"),
        })?;
        Ok(Header::Complete {
            payload_at: newline + 1,
            length,
            sum,
        })
    }

    /// Verifies and removes one complete envelope from the buffer.
    fn take_payload(
        &mut self,
        payload_at: usize,
        length: usize,
        sum: u64,
    ) -> Result<String, TransportError> {
        let payload = &self.buf[payload_at..payload_at + length];
        let found = checksum(payload);
        if found != sum {
            return Err(TransportError::ChecksumMismatch {
                expected: sum,
                found,
            });
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| TransportError::BadEnvelope {
                message: "payload is not valid UTF-8".to_owned(),
            })?
            .to_owned();
        self.buf.drain(..payload_at + length);
        Ok(text)
    }
}

/// Canonical decimal length: digits only, no leading zero (except `0`
/// itself, which no real envelope carries — the smallest frame is longer).
fn parse_length(token: &str) -> Option<usize> {
    if token.is_empty() || !token.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    if token.len() > 1 && token.starts_with('0') {
        return None;
    }
    token.parse().ok()
}

/// Exactly 16 *lowercase* hex digits, the same raw-bit form `mdqwire`
/// uses for amplitudes. Lowercase is enforced here (not just by
/// [`serialize::bits_from_hex`], which tolerates case) so that even a
/// value-preserving case flip — `a` → `A` under a `0x20` bit flip — is a
/// typed envelope error rather than a silently accepted frame.
fn parse_checksum(token: &str) -> Option<u64> {
    if token.len() != 16
        || !token
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    serialize::bits_from_hex(token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_engine::wire::ErrorFrame;
    use std::io::Cursor;

    fn error_frame() -> Frame {
        Frame::Error(ErrorFrame::QueueFull { depth: 7, limit: 4 })
    }

    fn enveloped(frame: &Frame) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, frame).expect("serialize");
        bytes
    }

    #[test]
    fn round_trips_one_frame_over_a_buffer() {
        let bytes = enveloped(&error_frame());
        let mut reader = FrameReader::new(1 << 20);
        let mut cursor = Cursor::new(bytes);
        let text = reader
            .read_frame(&mut cursor)
            .expect("read")
            .expect("one frame");
        assert!(matches!(
            Frame::parse(&text),
            Ok(Frame::Error(ErrorFrame::QueueFull { depth: 7, limit: 4 }))
        ));
        assert_eq!(reader.read_frame(&mut cursor).expect("clean EOF"), None);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn back_to_back_frames_split_cleanly() {
        let mut bytes = enveloped(&error_frame());
        bytes.extend_from_slice(&enveloped(&Frame::Error(ErrorFrame::Shutdown)));
        let mut reader = FrameReader::new(1 << 20);
        let mut cursor = Cursor::new(bytes);
        let first = reader.read_frame(&mut cursor).expect("read").expect("one");
        let second = reader.read_frame(&mut cursor).expect("read").expect("two");
        assert!(matches!(
            Frame::parse(&first),
            Ok(Frame::Error(ErrorFrame::QueueFull { .. }))
        ));
        assert!(matches!(
            Frame::parse(&second),
            Ok(Frame::Error(ErrorFrame::Shutdown))
        ));
    }

    #[test]
    fn every_single_byte_corruption_is_typed() {
        let bytes = enveloped(&error_frame());
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x20;
            let mut reader = FrameReader::new(1 << 20);
            let mut cursor = Cursor::new(bad);
            let outcome = reader.read_frame(&mut cursor);
            match outcome {
                Err(
                    TransportError::ChecksumMismatch { .. }
                    | TransportError::BadEnvelope { .. }
                    | TransportError::FrameTooLarge { .. }
                    | TransportError::ConnectionClosed,
                ) => {}
                other => panic!("corruption at byte {at} gave {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = enveloped(&error_frame());
        for cut in 0..bytes.len() {
            let mut reader = FrameReader::new(1 << 20);
            let mut cursor = Cursor::new(bytes[..cut].to_vec());
            match reader.read_frame(&mut cursor) {
                Ok(None) if cut == 0 => {}
                Err(TransportError::ConnectionClosed) if cut > 0 => {}
                other => panic!("truncation at byte {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_declaration_is_refused_before_buffering() {
        let bytes = enveloped(&error_frame());
        let mut reader = FrameReader::new(4);
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            reader.read_frame(&mut cursor),
            Err(TransportError::FrameTooLarge {
                declared: _,
                limit: 4
            })
        ));
    }

    #[test]
    fn endless_headerless_garbage_is_refused() {
        let mut reader = FrameReader::new(1 << 20);
        let mut cursor = Cursor::new(vec![b'x'; 1000]);
        assert!(matches!(
            reader.read_frame(&mut cursor),
            Err(TransportError::BadEnvelope { .. })
        ));
    }

    #[test]
    fn noncanonical_header_tokens_are_refused() {
        let payload = b"mdqwire 1\nerror\nshutdown\nend\n";
        let sum = serialize::bits_to_hex(checksum(payload));
        let cases: Vec<String> = vec![
            format!("mdqtx 029 {sum}\n"),         // leading-zero length
            format!("mdqtx +29 {sum}\n"),         // signed length
            format!("mdqtx 29 {}\n", &sum[..15]), // short checksum
            format!("mdqtx 29 {sum} extra\n"),    // trailing field
            format!("mdqtx29 {sum}\n"),           // missing space
            format!("MDQTX 29 {sum}\n"),          // wrong case
        ];
        for header in cases {
            let mut bytes = header.clone().into_bytes();
            bytes.extend_from_slice(payload);
            let mut reader = FrameReader::new(1 << 20);
            let mut cursor = Cursor::new(bytes);
            assert!(
                matches!(
                    reader.read_frame(&mut cursor),
                    Err(TransportError::BadEnvelope { .. })
                ),
                "header {header:?} was not refused as a bad envelope"
            );
        }
    }

    #[test]
    fn single_byte_difference_always_changes_the_checksum() {
        // FNV-1a's odd multiplier makes this exhaustive check pass by
        // construction; pin it so the checksum can never regress into a
        // weaker fold.
        let base = b"mdqwire 1\nerror\nshutdown\nend\n".to_vec();
        let reference = checksum(&base);
        for at in 0..base.len() {
            for xor in 1u8..=255 {
                let mut bad = base.clone();
                bad[at] ^= xor;
                assert_ne!(checksum(&bad), reference);
            }
        }
    }
}
