//! The blocking client side of the transport: connect with retry and
//! exponential backoff, send one request frame, read back one report or
//! error frame. No async runtime — one [`WireClient`] per submitting
//! thread, mirroring how the in-process engine hands one
//! [`JobHandle`](mdq_engine::JobHandle) to one waiter.

use std::fmt;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mdq_engine::wire::{ErrorFrame, Frame, ReportFrame, RequestFrame};

use crate::error::TransportError;
use crate::fault::{Fault, FaultyStream};
use crate::frame::{write_frame, FrameReader};
use crate::stream::{ServerAddr, Transport, WireStream};

/// A per-connection fault schedule: maps the client's 0-based connection
/// counter to the faults that connection should suffer. Tests install
/// one via [`ClientConfig::with_faults`]; production clients have none.
pub type FaultSchedule = Arc<dyn Fn(u64) -> Vec<Fault> + Send + Sync>;

/// Tuning for a [`WireClient`].
#[derive(Clone)]
pub struct ClientConfig {
    connect_attempts: u32,
    connect_timeout: Duration,
    initial_backoff: Duration,
    max_backoff: Duration,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    max_frame_bytes: usize,
    faults: Option<FaultSchedule>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_attempts: 5,
            connect_timeout: Duration::from_secs(2),
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_frame_bytes: 16 << 20,
            faults: None,
        }
    }
}

impl ClientConfig {
    /// The defaults: 5 connect attempts, 10 ms → 500 ms backoff, 30 s
    /// read/write deadlines, 16 MiB frame guard, no faults.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// How many times one reconnect loop tries before giving up with
    /// [`TransportError::ConnectFailed`] (minimum 1).
    #[must_use]
    pub fn with_connect_attempts(mut self, attempts: u32) -> Self {
        self.connect_attempts = attempts.max(1);
        self
    }

    /// Deadline for a single TCP connect.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Backoff between attempts: starts at `initial`, doubles, caps at
    /// `max`. Applies to both reconnects and call retries.
    #[must_use]
    pub fn with_backoff(mut self, initial: Duration, max: Duration) -> Self {
        self.initial_backoff = initial;
        self.max_backoff = max;
        self
    }

    /// Read deadline per reply; `None` blocks forever (not recommended
    /// against a server that can restart).
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Write deadline per request.
    #[must_use]
    pub fn with_write_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Largest reply payload the client will buffer.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, limit: usize) -> Self {
        self.max_frame_bytes = limit;
        self
    }

    /// Installs a fault schedule: every new connection is wrapped in a
    /// [`FaultyStream`] carrying `schedule(connection_index)`. This is
    /// how the chaos tests push faults through the *real* client path.
    #[must_use]
    pub fn with_faults(
        mut self,
        schedule: impl Fn(u64) -> Vec<Fault> + Send + Sync + 'static,
    ) -> Self {
        self.faults = Some(Arc::new(schedule));
        self
    }
}

impl fmt::Debug for ClientConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientConfig")
            .field("connect_attempts", &self.connect_attempts)
            .field("connect_timeout", &self.connect_timeout)
            .field("initial_backoff", &self.initial_backoff)
            .field("max_backoff", &self.max_backoff)
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("max_frame_bytes", &self.max_frame_bytes)
            .field("faults", &self.faults.as_ref().map(|_| "<schedule>"))
            .finish()
    }
}

/// What a healthy round-trip brought back: the server accepted the
/// connection, parsed the request, and answered with exactly one frame.
#[derive(Debug)]
pub enum ServerReply {
    /// The job ran; the report is bit-exact.
    Report(Box<ReportFrame>),
    /// The service refused or failed the job — a typed outcome, not a
    /// transport failure. Quota refusals and full queues land here.
    Refused(ErrorFrame),
}

impl ServerReply {
    /// The report, if the job completed.
    #[must_use]
    pub fn report(self) -> Option<ReportFrame> {
        match self {
            ServerReply::Report(report) => Some(*report),
            ServerReply::Refused(_) => None,
        }
    }

    /// The refusal, if the service turned the job away.
    #[must_use]
    pub fn refusal(&self) -> Option<&ErrorFrame> {
        match self {
            ServerReply::Report(_) => None,
            ServerReply::Refused(e) => Some(e),
        }
    }
}

/// A blocking `mdqwire` client over TCP or a unix socket.
///
/// Reconnects lazily: a transport failure drops the connection and the
/// next call dials again (with backoff). The connection counter feeds
/// the fault schedule, so chaos tests can address "connection 7" exactly.
pub struct WireClient {
    addr: ServerAddr,
    config: ClientConfig,
    conn: Option<Box<dyn Transport>>,
    reader: FrameReader,
    connections: u64,
    retries: u64,
}

impl fmt::Debug for WireClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WireClient")
            .field("addr", &self.addr)
            .field("connected", &self.conn.is_some())
            .field("connections", &self.connections)
            .field("retries", &self.retries)
            .finish()
    }
}

impl WireClient {
    /// Connects eagerly (with the config's retry/backoff), so an
    /// unreachable server fails here rather than on the first call.
    ///
    /// # Errors
    ///
    /// [`TransportError::ConnectFailed`] after every attempt fails.
    pub fn connect(addr: ServerAddr, config: ClientConfig) -> Result<Self, TransportError> {
        let reader = FrameReader::new(config.max_frame_bytes);
        let mut client = WireClient {
            addr,
            config,
            conn: None,
            reader,
            connections: 0,
            retries: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Where this client dials.
    #[must_use]
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// How many connections this client has opened (reconnects
    /// included).
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.connections
    }

    /// How many call retries [`call_with_retry`](Self::call_with_retry)
    /// has burned.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Drops the current connection; the next call redials.
    pub fn disconnect(&mut self) {
        if let Some(conn) = self.conn.take() {
            let _ = conn.shutdown();
        }
        self.reader.clear();
    }

    /// One request → one reply. Any transport failure drops the
    /// connection before returning, so the next call starts clean.
    ///
    /// A [`ServerReply::Refused`] is an `Ok`: the transport did its job;
    /// the *service* said no.
    ///
    /// # Errors
    ///
    /// Any [`TransportError`]; see [`TransportError::is_retryable`] for
    /// which ones a resend can fix.
    pub fn call(&mut self, request: &RequestFrame) -> Result<ServerReply, TransportError> {
        self.ensure_connected()?;
        let result = self.exchange(request);
        if result.is_err() {
            self.disconnect();
        }
        result
    }

    /// [`call`](Self::call), resubmitting on retryable weather, up to
    /// `attempts` total tries with the config's backoff between them.
    ///
    /// A [`ErrorFrame::BadFrame`] reply is also retried: it means the
    /// request bytes were mangled in flight (the server never admitted
    /// the job), so resending the intact bytes is safe and loses
    /// nothing. All other refusals are genuine outcomes and returned.
    ///
    /// # Errors
    ///
    /// The last failure, when every attempt burned.
    pub fn call_with_retry(
        &mut self,
        request: &RequestFrame,
        attempts: u32,
    ) -> Result<ServerReply, TransportError> {
        let attempts = attempts.max(1);
        let mut backoff = self.config.initial_backoff;
        let mut attempt = 0;
        loop {
            let outcome = self.call(request);
            attempt += 1;
            let last = attempt >= attempts;
            match outcome {
                Ok(ServerReply::Refused(ErrorFrame::BadFrame { .. })) if !last => {
                    // The server saw garbage where our request should
                    // be: it closed the connection without admitting
                    // anything, so resubmit over a fresh one.
                    self.disconnect();
                }
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_retryable() && !last => {}
                Err(e) => return Err(e),
            }
            self.retries += 1;
            thread::sleep(backoff);
            backoff = (backoff * 2).min(self.config.max_backoff);
        }
    }

    /// The unguarded write→read on the live connection.
    fn exchange(&mut self, request: &RequestFrame) -> Result<ServerReply, TransportError> {
        let conn = self.conn.as_mut().expect("ensure_connected ran");
        write_frame(conn, &Frame::Request(request.clone()))?;
        let text = self
            .reader
            .read_frame(conn)?
            .ok_or(TransportError::ConnectionClosed)?;
        match Frame::parse(&text)? {
            Frame::Report(report) => Ok(ServerReply::Report(Box::new(report))),
            Frame::Error(error) => Ok(ServerReply::Refused(error)),
            Frame::Request(_) => Err(TransportError::UnexpectedFrame {
                expected: "report or error",
                found: "request",
            }),
        }
    }

    /// Dials until connected or attempts run out, wrapping the new
    /// stream in the fault schedule when one is installed.
    fn ensure_connected(&mut self) -> Result<(), TransportError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut backoff = self.config.initial_backoff;
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..self.config.connect_attempts {
            if attempt > 0 {
                thread::sleep(backoff);
                backoff = (backoff * 2).min(self.config.max_backoff);
            }
            match WireStream::connect(&self.addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_timeouts(self.config.read_timeout, self.config.write_timeout)?;
                    let index = self.connections;
                    self.connections += 1;
                    self.reader.clear();
                    self.conn = Some(match &self.config.faults {
                        Some(schedule) => Box::new(FaultyStream::new(stream, schedule(index))),
                        None => Box::new(stream),
                    });
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(TransportError::ConnectFailed {
            attempts: self.config.connect_attempts,
            last: last.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotConnected, "no attempt ran")
            }),
        })
    }
}

// The client moves whole to whichever thread owns it; the boxed stream
// keeps it `Send` but deliberately not `Sync` — one caller at a time.
const fn assert_send<T: Send>() {}
const _: () = {
    assert_send::<WireClient>();
    assert_send::<ClientConfig>();
    assert_send::<ServerReply>();
};
