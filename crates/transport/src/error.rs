//! The transport tier's typed failure: everything that can go wrong
//! between a caller and a remote engine, short of the engine itself
//! refusing or failing the job (those travel back as
//! [`ErrorFrame`](mdq_engine::wire::ErrorFrame)s inside a perfectly
//! healthy connection).

use std::fmt;
use std::io;

use mdq_engine::wire::WireError;

/// A typed transport failure.
///
/// The contract mirrors [`WireError`]: a hostile or faulty peer can make
/// any of these happen, and none of them may ever surface as a panic or
/// an unbounded hang. Timeouts come from the socket's own
/// `set_read_timeout`/`set_write_timeout`, so even a slow-loris peer
/// resolves to [`TransportError::Timeout`] in bounded time.
#[derive(Debug)]
pub enum TransportError {
    /// The socket failed outside the cases given their own variant.
    Io(io::Error),
    /// A read or write missed its configured deadline.
    Timeout,
    /// The peer closed the connection mid-frame (or before replying).
    ConnectionClosed,
    /// The envelope declared a payload larger than the configured guard.
    FrameTooLarge {
        /// The payload size the envelope declared.
        declared: usize,
        /// The configured maximum.
        limit: usize,
    },
    /// The envelope header did not parse (or the payload was not UTF-8).
    BadEnvelope {
        /// What was wrong with it.
        message: String,
    },
    /// The payload's checksum did not match the envelope's.
    ///
    /// FNV-1a multiplies by an odd prime, so any single corrupted payload
    /// byte is *guaranteed* to trip this — there is no unlucky seed.
    ChecksumMismatch {
        /// The checksum the envelope promised.
        expected: u64,
        /// The checksum of the bytes that arrived.
        found: u64,
    },
    /// The payload failed `mdqwire` parsing.
    Wire(WireError),
    /// The peer sent a well-formed frame of the wrong kind (e.g. a
    /// request where a report was due).
    UnexpectedFrame {
        /// The kind(s) that would have been legal here.
        expected: &'static str,
        /// The kind that actually arrived.
        found: &'static str,
    },
    /// Every connection attempt failed.
    ConnectFailed {
        /// How many attempts were made.
        attempts: u32,
        /// The last attempt's failure.
        last: io::Error,
    },
}

impl TransportError {
    /// Whether retrying the same call can plausibly succeed.
    ///
    /// True for connection-level weather — timeouts, resets, corrupt
    /// bytes on the wire, exhausted connect attempts. False for protocol
    /// violations ([`Wire`](Self::Wire), [`BadEnvelope`](Self::BadEnvelope),
    /// [`UnexpectedFrame`](Self::UnexpectedFrame)) and for
    /// [`FrameTooLarge`](Self::FrameTooLarge), which a retry would only
    /// repeat.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TransportError::Io(_)
                | TransportError::Timeout
                | TransportError::ConnectionClosed
                | TransportError::ChecksumMismatch { .. }
                | TransportError::ConnectFailed { .. }
        )
    }

    /// Maps an [`io::Error`] onto the transport vocabulary: timeout kinds
    /// become [`Timeout`](Self::Timeout), an unexpected EOF becomes
    /// [`ConnectionClosed`](Self::ConnectionClosed), the rest stay
    /// [`Io`](Self::Io).
    #[must_use]
    pub fn from_io(error: io::Error) -> Self {
        match error.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => TransportError::Timeout,
            io::ErrorKind::UnexpectedEof => TransportError::ConnectionClosed,
            _ => TransportError::Io(error),
        }
    }
}

impl From<io::Error> for TransportError {
    fn from(error: io::Error) -> Self {
        TransportError::from_io(error)
    }
}

impl From<WireError> for TransportError {
    fn from(error: WireError) -> Self {
        TransportError::Wire(error)
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "socket error: {e}"),
            TransportError::Timeout => write!(f, "read or write missed its deadline"),
            TransportError::ConnectionClosed => write!(f, "peer closed the connection mid-frame"),
            TransportError::FrameTooLarge { declared, limit } => write!(
                f,
                "frame of {declared} bytes exceeds the {limit}-byte guard"
            ),
            TransportError::BadEnvelope { message } => write!(f, "bad envelope: {message}"),
            TransportError::ChecksumMismatch { expected, found } => write!(
                f,
                "payload checksum {found:016x} does not match envelope checksum {expected:016x}"
            ),
            TransportError::Wire(e) => write!(f, "wire protocol error: {e}"),
            TransportError::UnexpectedFrame { expected, found } => {
                write!(f, "expected {expected} frame, got {found} frame")
            }
            TransportError::ConnectFailed { attempts, last } => {
                write!(f, "all {attempts} connection attempts failed; last: {last}")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Wire(e) => Some(e),
            TransportError::ConnectFailed { last, .. } => Some(last),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_kinds_map_to_typed_variants() {
        let timeout = TransportError::from_io(io::Error::new(io::ErrorKind::TimedOut, "t"));
        assert!(matches!(timeout, TransportError::Timeout));
        let would_block = TransportError::from_io(io::Error::new(io::ErrorKind::WouldBlock, "w"));
        assert!(matches!(would_block, TransportError::Timeout));
        let eof = TransportError::from_io(io::Error::new(io::ErrorKind::UnexpectedEof, "e"));
        assert!(matches!(eof, TransportError::ConnectionClosed));
        let other = TransportError::from_io(io::Error::new(io::ErrorKind::BrokenPipe, "b"));
        assert!(matches!(other, TransportError::Io(_)));
    }

    #[test]
    fn retryability_splits_weather_from_protocol_violations() {
        assert!(TransportError::Timeout.is_retryable());
        assert!(TransportError::ConnectionClosed.is_retryable());
        assert!(TransportError::ChecksumMismatch {
            expected: 1,
            found: 2
        }
        .is_retryable());
        assert!(!TransportError::FrameTooLarge {
            declared: 10,
            limit: 5
        }
        .is_retryable());
        assert!(!TransportError::BadEnvelope {
            message: "x".into()
        }
        .is_retryable());
        assert!(!TransportError::Wire(WireError::Truncated).is_retryable());
    }
}
