//! Socket plumbing shared by client and server: the address vocabulary
//! ([`ServerAddr`]), the byte-stream abstraction the framing layer works
//! against ([`Transport`]), and the concrete TCP/unix-socket stream
//! ([`WireStream`]).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::PathBuf;
use std::time::Duration;

/// Where a [`WireServer`](crate::WireServer) listens, or where a
/// [`WireClient`](crate::WireClient) connects.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ServerAddr {
    /// A TCP socket address. Port `0` asks the kernel for a free port;
    /// the server's `local_addr` reports the resolved one.
    Tcp(SocketAddr),
    /// A unix-domain socket path. Binding unlinks any stale socket file
    /// left by a killed process, which is what makes kill-and-restart on
    /// the same path work without a `TIME_WAIT`-style dance.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl ServerAddr {
    /// Loopback TCP on a kernel-assigned port — the default for tests.
    #[must_use]
    pub fn loopback() -> Self {
        ServerAddr::Tcp(SocketAddr::from(([127, 0, 0, 1], 0)))
    }

    /// A unix-domain socket at `path`.
    #[cfg(unix)]
    pub fn unix(path: impl Into<PathBuf>) -> Self {
        ServerAddr::Unix(path.into())
    }
}

impl fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerAddr::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            ServerAddr::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A bidirectional byte stream the framing layer can serve over.
///
/// The one capability beyond `Read + Write` is [`shutdown`](Self::shutdown),
/// which the fault injector uses to make the peer observe a genuine
/// mid-frame disconnect (EOF, not a timeout) and the server uses to close
/// connections deterministically.
pub trait Transport: Read + Write + Send {
    /// Closes both directions so the peer observes EOF.
    ///
    /// # Errors
    ///
    /// Propagates the socket's shutdown failure; already-closed sockets
    /// commonly report `NotConnected`, which callers may ignore.
    fn shutdown(&self) -> io::Result<()>;
}

/// A connected TCP or unix-domain socket.
#[derive(Debug)]
pub enum WireStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl WireStream {
    /// Connects to `addr`, bounding the TCP handshake by `timeout`.
    ///
    /// Unix-domain connects are local rendezvous and carry no timeout in
    /// std; they fail fast (`ENOENT`/`ECONNREFUSED`) when no listener is
    /// home, which is what the client's retry loop wants.
    ///
    /// # Errors
    ///
    /// Any socket-level connect failure, untranslated — the caller
    /// ([`WireClient`](crate::WireClient)) folds it into its retry loop.
    pub fn connect(addr: &ServerAddr, timeout: Duration) -> io::Result<Self> {
        match addr {
            ServerAddr::Tcp(sa) => TcpStream::connect_timeout(sa, timeout).map(WireStream::Tcp),
            #[cfg(unix)]
            ServerAddr::Unix(path) => UnixStream::connect(path).map(WireStream::Unix),
        }
    }

    /// A connected unix socketpair — two ends of one in-process pipe,
    /// indistinguishable from a real connection to the framing layer.
    /// This is what the transport proptests stream frames over.
    ///
    /// # Errors
    ///
    /// Propagates `socketpair(2)` failure.
    #[cfg(unix)]
    pub fn pair() -> io::Result<(WireStream, WireStream)> {
        let (a, b) = UnixStream::pair()?;
        Ok((WireStream::Unix(a), WireStream::Unix(b)))
    }

    /// Arms per-connection read/write deadlines. `None` means block
    /// forever (never used by the server, whose read timeout doubles as
    /// its slow-loris guard).
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failure.
    pub fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => {
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
            #[cfg(unix)]
            WireStream::Unix(s) => {
                s.set_read_timeout(read)?;
                s.set_write_timeout(write)
            }
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            WireStream::Unix(s) => s.flush(),
        }
    }
}

impl Transport for WireStream {
    fn shutdown(&self) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            WireStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_display_with_scheme_prefixes() {
        let tcp = ServerAddr::Tcp(SocketAddr::from(([127, 0, 0, 1], 4455)));
        assert_eq!(tcp.to_string(), "tcp://127.0.0.1:4455");
        #[cfg(unix)]
        {
            let unix = ServerAddr::unix("/tmp/mdq.sock");
            assert_eq!(unix.to_string(), "unix:///tmp/mdq.sock");
        }
    }

    #[cfg(unix)]
    #[test]
    fn socketpair_carries_bytes_both_ways() {
        let (mut a, mut b) = WireStream::pair().expect("socketpair");
        a.write_all(b"ping").expect("write");
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").expect("write back");
        a.read_exact(&mut buf).expect("read back");
        assert_eq!(&buf, b"pong");
    }
}
