//! Network serving tier for the `mdqwire` protocol — std-only, no async
//! runtime.
//!
//! [`WireServer`] owns a [`Backend`] (a single
//! [`EngineService`](mdq_engine::EngineService) or a sharded
//! [`Router`](mdq_router::Router)) and serves `mdqwire` frames over TCP
//! or unix-domain sockets: a nonblocking accept loop feeds a bounded
//! pool of handler threads; each connection gets read/write deadlines
//! and a max-frame-size guard; each request frame runs
//! `parse → submit → wait` and is answered with exactly one
//! [`ReportFrame`](mdq_engine::wire::ReportFrame) or
//! [`ErrorFrame`](mdq_engine::wire::ErrorFrame). Refusals keep the
//! hand-back-by-value idiom remote: `queue-full` and
//! `tenant-over-quota` come back typed while the client still holds the
//! request to resubmit.
//!
//! [`WireClient`] is the blocking caller: connect with retry and
//! exponential backoff, one request → one reply, every failure a typed
//! [`TransportError`] — never a panic, never an unbounded hang, no
//! matter how hostile the peer.
//!
//! On the wire, each `mdqwire` frame travels under a one-line envelope
//! (see [`frame`-level docs](write_frame)) that is both length-delimited
//! and checksummed, so truncation and corruption are detected *before*
//! [`Frame::parse`](mdq_engine::wire::Frame::parse) ever sees the bytes.
//!
//! Graceful [`WireServer::shutdown`] drains in-flight connections, joins
//! the pool, and shuts the backend down — router shards write their warm
//! snapshots, so a killed-and-restarted remote shard starts warm
//! (PR 7/9's cache snapshots, now paying off across processes).
//!
//! The [`fault`] module is the test half of the tier: a deterministic
//! [`FaultyStream`] wrapper and seeded [`FaultPlan`] schedules that
//! chaos tests push through the *real* client path — partial writes,
//! mid-frame cuts, byte corruption, slow-loris stalls.
//!
//! ```
//! use mdq_core::PrepareOptions;
//! use mdq_engine::wire::RequestFrame;
//! use mdq_engine::{EngineConfig, EngineService, PrepareRequest};
//! use mdq_num::radix::Dims;
//! use mdq_states::ghz;
//! use mdq_transport::{
//!     Backend, ClientConfig, ServerAddr, ServerConfig, WireClient, WireServer,
//! };
//!
//! // A one-engine server on loopback TCP, kernel-assigned port.
//! let backend = Backend::Service(EngineService::new(EngineConfig::default().with_workers(1)));
//! let server = WireServer::bind(&ServerAddr::loopback(), backend, ServerConfig::new())
//!     .expect("bind");
//!
//! // A blocking client dials the resolved address and round-trips one job.
//! let mut client = WireClient::connect(server.local_addr().clone(), ClientConfig::new())
//!     .expect("connect");
//! let dims = Dims::new(vec![2, 3]).expect("valid register");
//! let request = PrepareRequest::dense(dims.clone(), ghz(&dims), PrepareOptions::exact());
//! let reply = client
//!     .call(&RequestFrame { tenant: None, request })
//!     .expect("round trip");
//! let report = reply.report().expect("job completed");
//! assert!(!report.report.circuit.instructions().is_empty());
//!
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod error;
pub mod fault;
mod frame;
mod server;
mod stream;

pub use client::{ClientConfig, FaultSchedule, ServerReply, WireClient};
pub use error::TransportError;
pub use fault::{Fault, FaultPlan, FaultyStream};
pub use frame::{checksum, write_frame, FrameReader};
pub use server::{Backend, ServerConfig, ServerStats, WireServer};
pub use stream::{ServerAddr, Transport, WireStream};
