//! Applying circuit instructions directly to decision diagrams.
//!
//! This is the decision-diagram *simulation* substrate the paper's authors
//! use for verification (Mato, Hillmich, Wille, *"Mixed-dimensional quantum
//! circuit simulation with decision diagrams"*, QCE 2023 — reference \[12\]
//! of the paper): instead of a dense state vector, the evolving state stays
//! a diagram, so structured circuits can be verified on registers whose
//! Hilbert space could never be allocated.
//!
//! The supported instruction shape matches what the synthesizer emits:
//! every control qudit must be *more significant* than the target (controls
//! are the diagram path from the root). Arbitrary control layouts are
//! covered by the dense simulator in `mdq-sim`.

use std::collections::HashMap;
use std::fmt;

use mdq_num::matrix::CMatrix;
use mdq_num::radix::Dims;
use mdq_num::{Complex, Tolerance};

use crate::node::{Edge, Node, NodeId, NodeRef};
use crate::StateDd;

/// Errors produced by [`StateDd::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// The target qudit index is out of range.
    TargetOutOfRange {
        /// The offending target index.
        qudit: usize,
    },
    /// A control qudit is not above (more significant than) the target.
    ///
    /// Diagram application processes levels root-down, so a control below
    /// the target would require operator diagrams; the synthesizer never
    /// emits such instructions (controls are the root path), and the dense
    /// simulator handles the general case.
    ControlNotAboveTarget {
        /// The offending control qudit.
        control: usize,
        /// The target qudit.
        target: usize,
    },
    /// A control level exceeds its qudit's dimension.
    ControlLevelOutOfRange {
        /// The offending control level.
        level: usize,
        /// The control qudit's dimension.
        dim: usize,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::TargetOutOfRange { qudit } => {
                write!(f, "target qudit {qudit} out of range")
            }
            ApplyError::ControlNotAboveTarget { control, target } => write!(
                f,
                "control qudit {control} is not above target {target} (only root-side controls are supported on diagrams)"
            ),
            ApplyError::ControlLevelOutOfRange { level, dim } => {
                write!(f, "control level {level} out of range for dimension {dim}")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// Hash-consing key over exact weight bit patterns (the arena holds
/// unnormalized intermediates, so tolerance-bucketing waits until the final
/// normalization).
type RawKey = (usize, Vec<(u64, u64, NodeRef)>);

struct ApplyCtx<'a> {
    src: &'a StateDd,
    tol: f64,
    nodes: Vec<Node>,
    unique: HashMap<RawKey, NodeId>,
    copy_memo: HashMap<NodeId, NodeRef>,
    rec_memo: HashMap<(NodeId, usize), NodeRef>,
}

impl<'a> ApplyCtx<'a> {
    fn make_node(&mut self, level: usize, edges: Vec<Edge>) -> NodeRef {
        if edges.iter().all(|e| e.is_zero(self.tol)) {
            return NodeRef::Terminal;
        }
        let key: RawKey = (
            level,
            edges
                .iter()
                .map(|e| (e.weight.re.to_bits(), e.weight.im.to_bits(), e.target))
                .collect(),
        );
        let id = *self.unique.entry(key).or_insert_with(|| {
            let id = NodeId::new(self.nodes.len());
            self.nodes.push(Node::new(level, edges));
            id
        });
        NodeRef::Node(id)
    }

    /// Imports a source subtree unchanged into the result arena.
    fn copy(&mut self, nref: NodeRef) -> NodeRef {
        let id = match nref {
            NodeRef::Terminal => return NodeRef::Terminal,
            NodeRef::Node(id) => id,
        };
        if let Some(&done) = self.copy_memo.get(&id) {
            return done;
        }
        let node = self.src.node(id);
        let level = node.level();
        let edges: Vec<Edge> = node
            .edges()
            .iter()
            .map(|e| {
                if e.is_zero(self.tol) {
                    Edge::ZERO
                } else {
                    Edge::new(e.weight, self.copy(e.target))
                }
            })
            .collect();
        let new = self.make_node(level, edges);
        self.copy_memo.insert(id, new);
        new
    }

    /// Sum of two (unnormalized) weighted subtrees rooted at the same level.
    fn add(&mut self, a: Edge, b: Edge) -> Edge {
        if a.is_zero(self.tol) {
            return b;
        }
        if b.is_zero(self.tol) {
            return a;
        }
        match (a.target, b.target) {
            (NodeRef::Terminal, NodeRef::Terminal) => {
                let w = a.weight + b.weight;
                if w.is_zero(self.tol) {
                    Edge::ZERO
                } else {
                    Edge::new(w, NodeRef::Terminal)
                }
            }
            (NodeRef::Node(na), NodeRef::Node(nb)) => {
                let (level, ea, eb) = {
                    let na = &self.nodes[na.index()];
                    let nb = &self.nodes[nb.index()];
                    debug_assert_eq!(na.level(), nb.level());
                    (na.level(), na.edges().to_vec(), nb.edges().to_vec())
                };
                let mut edges = Vec::with_capacity(ea.len());
                for (x, y) in ea.into_iter().zip(eb) {
                    let xs = Edge::new(a.weight * x.weight, x.target);
                    let ys = Edge::new(b.weight * y.weight, y.target);
                    edges.push(self.add(xs, ys));
                }
                let node = self.make_node(level, edges);
                if node.is_terminal() {
                    Edge::ZERO
                } else {
                    Edge::new(Complex::ONE, node)
                }
            }
            // Mixed terminal/internal cannot happen for equal levels.
            _ => unreachable!("subtree addition at mismatched depths"),
        }
    }

    /// Transforms the subtree of `id` by the instruction, with `ctrl_idx`
    /// controls (sorted by qudit) still pending.
    fn rec(
        &mut self,
        id: NodeId,
        ctrl_idx: usize,
        controls: &[(usize, usize)],
        target: usize,
        matrix: &CMatrix,
    ) -> NodeRef {
        if let Some(&done) = self.rec_memo.get(&(id, ctrl_idx)) {
            return done;
        }
        let node = self.src.node(id);
        let level = node.level();
        let src_edges = node.edges().to_vec();

        let new = if level == target {
            // All controls consumed (they sit above the target).
            let d = src_edges.len();
            let mut edges = Vec::with_capacity(d);
            for j in 0..d {
                let mut acc = Edge::ZERO;
                for (k, e) in src_edges.iter().enumerate() {
                    let coeff = matrix.get(j, k);
                    if coeff.is_zero(self.tol) || e.is_zero(self.tol) {
                        continue;
                    }
                    let term = Edge::new(coeff * e.weight, self.copy(e.target));
                    acc = self.add(acc, term);
                }
                edges.push(acc);
            }
            self.make_node(level, edges)
        } else {
            let pending = controls.get(ctrl_idx).copied();
            let edges: Vec<Edge> = src_edges
                .iter()
                .enumerate()
                .map(|(k, e)| {
                    if e.is_zero(self.tol) {
                        return Edge::ZERO;
                    }
                    let child = match e.target {
                        NodeRef::Terminal => NodeRef::Terminal,
                        NodeRef::Node(cid) => match pending {
                            Some((cq, cl)) if cq == level => {
                                if k == cl {
                                    self.rec(cid, ctrl_idx + 1, controls, target, matrix)
                                } else {
                                    self.copy(e.target)
                                }
                            }
                            _ => self.rec(cid, ctrl_idx, controls, target, matrix),
                        },
                    };
                    Edge::new(e.weight, child)
                })
                .collect();
            self.make_node(level, edges)
        };
        self.rec_memo.insert((id, ctrl_idx), new);
        new
    }
}

/// Renormalizes an unnormalized arena into a canonical [`StateDd`].
fn normalize_arena(
    dims: &Dims,
    tolerance: Tolerance,
    arena: Vec<Node>,
    root: NodeRef,
    root_weight: Complex,
) -> StateDd {
    let tol = tolerance.value();
    let mut nodes: Vec<Node> = Vec::new();
    let mut memo: Vec<Option<(Complex, NodeRef)>> = vec![None; arena.len()];

    for (idx, node) in arena.iter().enumerate() {
        let mut edges: Vec<Edge> = node
            .edges()
            .iter()
            .map(|e| {
                if e.is_zero(tol) {
                    return Edge::ZERO;
                }
                match e.target {
                    NodeRef::Terminal => *e,
                    NodeRef::Node(cid) => {
                        let (scale, target) = memo[cid.index()].expect("children precede parents");
                        let w = e.weight * scale;
                        if w.is_zero(tol) {
                            Edge::ZERO
                        } else {
                            Edge::new(w, target)
                        }
                    }
                }
            })
            .collect();
        let norm_sqr: f64 = edges.iter().map(|e| e.weight.norm_sqr()).sum();
        let norm = norm_sqr.sqrt();
        if norm <= tol {
            memo[idx] = Some((Complex::ZERO, NodeRef::Terminal));
            continue;
        }
        for e in &mut edges {
            e.weight = e.weight / norm;
        }
        let phase = edges
            .iter()
            .find(|e| !e.is_zero(tol))
            .map_or(0.0, |e| e.weight.arg());
        let unphase = Complex::cis(-phase);
        for e in &mut edges {
            e.weight *= unphase;
            if e.is_zero(tol) {
                e.weight = Complex::ZERO;
            }
        }
        let id = NodeId::new(nodes.len());
        nodes.push(Node::new(node.level(), edges));
        memo[idx] = Some((Complex::from_polar(norm, phase), NodeRef::Node(id)));
    }

    let (scale, root) = match root {
        NodeRef::Terminal => (Complex::ZERO, NodeRef::Terminal),
        NodeRef::Node(id) => memo[id.index()].expect("root visited"),
    };
    let total = root_weight * scale;
    let root_weight = if total.is_zero(tol) {
        Complex::ZERO
    } else {
        // Unitary gates preserve the norm; keep only the phase.
        Complex::cis(total.arg())
    };
    StateDd {
        dims: dims.clone(),
        tolerance,
        nodes,
        root,
        root_weight,
    }
}

impl StateDd {
    /// The product ground state `|0…0⟩` as a diagram (one node per level).
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::StateDd;
    /// use mdq_num::radix::Dims;
    ///
    /// let dims = Dims::new(vec![3, 6, 2])?;
    /// let dd = StateDd::ground(&dims);
    /// assert_eq!(dd.node_count(), 3);
    /// assert!((dd.amplitude(&[0, 0, 0]).abs() - 1.0).abs() < 1e-12);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn ground(dims: &Dims) -> StateDd {
        let mut nodes: Vec<Node> = Vec::new();
        let mut below = NodeRef::Terminal;
        for level in (0..dims.len()).rev() {
            let mut edges = vec![Edge::ZERO; dims.dim(level)];
            edges[0] = Edge::new(Complex::ONE, below);
            let id = NodeId::new(nodes.len());
            nodes.push(Node::new(level, edges));
            below = NodeRef::Node(id);
        }
        StateDd {
            dims: dims.clone(),
            tolerance: Tolerance::default(),
            nodes,
            root: below,
            root_weight: Complex::ONE,
        }
    }

    /// Applies one circuit instruction to the diagram, returning the new
    /// diagram (decision-diagram simulation, cf. reference \[12\]).
    ///
    /// All control qudits must be more significant than the target (which
    /// holds for every instruction the synthesizer emits); see
    /// [`ApplyError::ControlNotAboveTarget`].
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] for out-of-range targets, below-target
    /// controls, or out-of-range control levels.
    pub fn apply(&self, instruction: &mdq_circuit::Instruction) -> Result<StateDd, ApplyError> {
        let target = instruction.qudit;
        if target >= self.dims.len() {
            return Err(ApplyError::TargetOutOfRange { qudit: target });
        }
        let mut controls: Vec<(usize, usize)> = Vec::with_capacity(instruction.controls.len());
        for c in &instruction.controls {
            if c.qudit >= target {
                return Err(ApplyError::ControlNotAboveTarget {
                    control: c.qudit,
                    target,
                });
            }
            let dim = self.dims.dim(c.qudit);
            if c.level >= dim {
                return Err(ApplyError::ControlLevelOutOfRange {
                    level: c.level,
                    dim,
                });
            }
            controls.push((c.qudit, c.level));
        }
        controls.sort_unstable();
        let matrix = instruction.gate.matrix(self.dims.dim(target));

        let mut ctx = ApplyCtx {
            src: self,
            tol: self.tolerance.value(),
            nodes: Vec::new(),
            unique: HashMap::new(),
            copy_memo: HashMap::new(),
            rec_memo: HashMap::new(),
        };
        let root = match self.root {
            NodeRef::Terminal => NodeRef::Terminal,
            NodeRef::Node(id) => ctx.rec(id, 0, &controls, target, &matrix),
        };
        Ok(normalize_arena(
            &self.dims,
            self.tolerance,
            ctx.nodes,
            root,
            self.root_weight,
        ))
    }

    /// Applies a whole circuit to the diagram (see [`StateDd::apply`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`ApplyError`]; the circuit's register must match
    /// the diagram's.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is defined over a different register.
    pub fn apply_circuit(&self, circuit: &mdq_circuit::Circuit) -> Result<StateDd, ApplyError> {
        assert_eq!(
            circuit.dims(),
            &self.dims,
            "circuit register differs from diagram register"
        );
        let mut state = self.clone();
        for instr in circuit.iter() {
            state = state.apply(instr)?;
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildOptions;
    use mdq_circuit::{Circuit, Control, Gate, Instruction};

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    #[test]
    fn ground_state_diagram() {
        let d = dims(&[3, 2]);
        let dd = StateDd::ground(&d);
        assert!((dd.amplitude(&[0, 0]).abs() - 1.0).abs() < 1e-12);
        assert!(dd.amplitude(&[2, 1]).is_zero(1e-12));
        assert_eq!(dd.node_count(), 2);
    }

    #[test]
    fn fourier_on_ground_gives_uniform_qudit() {
        let d = dims(&[3]);
        let dd = StateDd::ground(&d)
            .apply(&Instruction::local(0, Gate::fourier()))
            .unwrap();
        let a = 1.0 / 3.0_f64.sqrt();
        for k in 0..3 {
            assert!((dd.amplitude(&[k]).abs() - a).abs() < 1e-12);
        }
    }

    #[test]
    fn ghz_circuit_on_diagram_matches_dense_simulation() {
        let d = dims(&[3, 3]);
        let mut c = Circuit::new(d.clone());
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::shift(1),
            vec![Control::new(0, 1)],
        ))
        .unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::shift(2),
            vec![Control::new(0, 2)],
        ))
        .unwrap();
        let dd = StateDd::ground(&d).apply_circuit(&c).unwrap();
        for k in 0..3 {
            assert!(
                (dd.amplitude(&[k, k]).norm_sqr() - 1.0 / 3.0).abs() < 1e-12,
                "component {k}"
            );
        }
        assert!(dd.amplitude(&[0, 1]).is_zero(1e-12));
    }

    #[test]
    fn apply_matches_dense_vector_on_random_states() {
        let d = dims(&[3, 2, 4]);
        let n = d.space_size();
        let amps: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin() + 0.3, (i as f64 * 0.4).cos()))
            .collect();
        let norm = mdq_num::norm(&amps);
        let amps: Vec<Complex> = amps.into_iter().map(|a| a / norm).collect();
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();

        let instructions = [
            Instruction::local(1, Gate::givens(0, 1, 1.1, -0.4)),
            Instruction::controlled(2, Gate::givens(1, 3, 0.6, 0.2), vec![Control::new(0, 1)]),
            Instruction::controlled(
                2,
                Gate::z_rotation(0, 2, 0.9),
                vec![Control::new(0, 2), Control::new(1, 1)],
            ),
            Instruction::local(0, Gate::fourier()),
            Instruction::local(2, Gate::shift(3)),
        ];
        let mut expect = amps;
        let mut state = dd;
        for instr in &instructions {
            state = state.apply(instr).unwrap();
            // Dense reference: apply the full matrix manually.
            expect = dense_apply(&d, &expect, instr);
            let got = state.to_amplitudes();
            let f = mdq_num::fidelity(&got, &expect);
            assert!((f - 1.0).abs() < 1e-9, "fidelity {f} after {instr}");
        }
    }

    /// Minimal dense reference implementation for the test above.
    fn dense_apply(d: &Dims, amps: &[Complex], instr: &Instruction) -> Vec<Complex> {
        let target = instr.qudit;
        let dt = d.dim(target);
        let strides = d.strides();
        let m = instr.gate.matrix(dt);
        let mut out = amps.to_vec();
        for base in 0..amps.len() {
            if !(base / strides[target]).is_multiple_of(dt) {
                continue;
            }
            if !instr
                .controls
                .iter()
                .all(|c| (base / strides[c.qudit]) % d.dim(c.qudit) == c.level)
            {
                continue;
            }
            let fiber: Vec<Complex> = (0..dt).map(|k| amps[base + k * strides[target]]).collect();
            let new = m.mul_vec(&fiber);
            for (k, v) in new.into_iter().enumerate() {
                out[base + k * strides[target]] = v;
            }
        }
        out
    }

    #[test]
    fn apply_rejects_below_target_controls() {
        let d = dims(&[2, 2]);
        let dd = StateDd::ground(&d);
        let err = dd
            .apply(&Instruction::controlled(
                0,
                Gate::shift(1),
                vec![Control::new(1, 1)],
            ))
            .unwrap_err();
        assert_eq!(
            err,
            ApplyError::ControlNotAboveTarget {
                control: 1,
                target: 0
            }
        );
    }

    #[test]
    fn apply_rejects_bad_target_and_levels() {
        let d = dims(&[2, 3]);
        let dd = StateDd::ground(&d);
        assert_eq!(
            dd.apply(&Instruction::local(5, Gate::shift(1)))
                .unwrap_err(),
            ApplyError::TargetOutOfRange { qudit: 5 }
        );
        assert_eq!(
            dd.apply(&Instruction::controlled(
                1,
                Gate::shift(1),
                vec![Control::new(0, 2)]
            ))
            .unwrap_err(),
            ApplyError::ControlLevelOutOfRange { level: 2, dim: 2 }
        );
    }

    #[test]
    fn applied_diagrams_stay_normalized() {
        let d = dims(&[4, 3]);
        let mut state = StateDd::ground(&d);
        for instr in [
            Instruction::local(0, Gate::fourier()),
            Instruction::controlled(1, Gate::givens(0, 2, 0.7, 0.1), vec![Control::new(0, 3)]),
            Instruction::local(1, Gate::shift(2)),
        ] {
            state = state.apply(&instr).unwrap();
            for node in state.nodes() {
                let s: f64 = node.edges().iter().map(|e| e.weight.norm_sqr()).sum();
                assert!((s - 1.0).abs() < 1e-9, "node norm {s} after {instr}");
            }
            assert!((state.root().0.abs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn diagram_simulation_scales_to_large_ghz() {
        // 16 qutrits: 43 million amplitudes; the diagram never exceeds a few
        // dozen nodes while the GHZ-style circuit runs.
        let n = 16;
        let d = Dims::uniform(n, 3).unwrap();
        let mut c = Circuit::new(d.clone());
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        for q in 1..n {
            // Chain the correlation down the register.
            c.push(Instruction::controlled(
                q,
                Gate::shift(1),
                vec![Control::new(q - 1, 1)],
            ))
            .unwrap();
            c.push(Instruction::controlled(
                q,
                Gate::shift(2),
                vec![Control::new(q - 1, 2)],
            ))
            .unwrap();
        }
        let state = StateDd::ground(&d).apply_circuit(&c).unwrap();
        assert!(state.node_count() <= 3 * n);
        let a = 1.0 / 3.0_f64.sqrt();
        for k in 0..3 {
            let digits = vec![k; n];
            assert!((state.amplitude(&digits).abs() - a).abs() < 1e-9);
        }
    }
}
