//! Applying circuit instructions directly to decision diagrams.
//!
//! This is the decision-diagram *simulation* substrate the paper's authors
//! use for verification (Mato, Hillmich, Wille, *"Mixed-dimensional quantum
//! circuit simulation with decision diagrams"*, QCE 2023 — reference \[12\]
//! of the paper): instead of a dense state vector, the evolving state stays
//! a diagram, so structured circuits can be verified on registers whose
//! Hilbert space could never be allocated.
//!
//! Application works *in the diagram's own arena*: untouched subtrees are
//! shared with the input by reference (no copy pass), transformed nodes are
//! interned through the same unique table, and the recursive transform and
//! weighted-sum steps memoize through a [`ComputeCache`].
//! [`StateDd::apply_circuit`] threads one arena and one cache through every
//! instruction of a circuit and compacts the arena once at the end, so a
//! whole simulation run allocates a single node store. Whole-circuit
//! application additionally **fuses** runs of instructions sharing one
//! target and control set into a single matrix (skipping exact identities),
//! and edits full control paths through a frame stack ([`PathEditor`]) so
//! consecutive instructions sharing path prefixes — the synthesizer's DFS
//! emission order — re-intern each path node once per context switch
//! instead of once per instruction. This is what makes replay
//! *verification* of synthesized circuits cost the same order as the
//! preparation pipeline itself.
//!
//! The supported instruction shape matches what the synthesizer emits:
//! every control qudit must be *more significant* than the target (controls
//! are the diagram path from the root). Arbitrary control layouts are
//! covered by the dense simulator in `mdq-sim`.

use std::fmt;

use mdq_num::matrix::CMatrix;
use mdq_num::radix::Dims;
use mdq_num::{Complex, Tolerance};

use crate::arena::{ArenaOverflow, ComputeCache, DdArena};
use crate::node::{Edge, NodeId, NodeRef};
use crate::StateDd;

/// Errors produced by [`StateDd::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// The target qudit index is out of range.
    TargetOutOfRange {
        /// The offending target index.
        qudit: usize,
    },
    /// A control qudit is not above (more significant than) the target.
    ///
    /// Diagram application processes levels root-down, so a control below
    /// the target would require operator diagrams; the synthesizer never
    /// emits such instructions (controls are the root path), and the dense
    /// simulator handles the general case.
    ControlNotAboveTarget {
        /// The offending control qudit.
        control: usize,
        /// The target qudit.
        target: usize,
    },
    /// A control level exceeds its qudit's dimension.
    ControlLevelOutOfRange {
        /// The offending control level.
        level: usize,
        /// The control qudit's dimension.
        dim: usize,
    },
    /// The node arena reached its capacity while interning result nodes
    /// (the limit configured at build time, or the `u32` index space). The
    /// diagram is left unchanged semantically — the root still points at
    /// the pre-instruction state.
    ArenaOverflow {
        /// The node limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::TargetOutOfRange { qudit } => {
                write!(f, "target qudit {qudit} out of range")
            }
            ApplyError::ControlNotAboveTarget { control, target } => write!(
                f,
                "control qudit {control} is not above target {target} (only root-side controls are supported on diagrams)"
            ),
            ApplyError::ControlLevelOutOfRange { level, dim } => {
                write!(f, "control level {level} out of range for dimension {dim}")
            }
            ApplyError::ArenaOverflow { limit } => {
                write!(f, "decision-diagram arena is full ({limit} nodes)")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

impl From<ArenaOverflow> for ApplyError {
    fn from(e: ArenaOverflow) -> Self {
        ApplyError::ArenaOverflow { limit: e.limit }
    }
}

/// Whether `matrix` is the *exact* identity (bit-level `1.0` diagonal,
/// `±0.0` elsewhere). Zero-angle rotations — which paper-faithful synthesis
/// emits in large numbers — hit this exactly (`cos(±0) == 1.0`,
/// `sin(±0) == ±0.0`), and skipping them is bit-equivalent to applying
/// them, so the check deliberately uses no tolerance.
fn is_identity(matrix: &CMatrix) -> bool {
    let n = matrix.dim();
    for j in 0..n {
        for k in 0..n {
            let c = matrix.get(j, k);
            let want_re = if j == k { 1.0 } else { 0.0 };
            if c.re != want_re || c.im != 0.0 {
                return false;
            }
        }
    }
    true
}

/// Checks whether `controls` form the *full* path above `target` — one
/// control on every qudit `0..target` — and returns the per-level control
/// levels in qudit order if so. Synthesized circuits always have this
/// shape; reduced-diagram circuits (elided controls) do not.
///
/// # Errors
///
/// Rejects out-of-range control levels and below-target controls, exactly
/// as the generic application path does.
fn full_control_path(
    dims: &Dims,
    target: usize,
    controls: &[mdq_circuit::Control],
) -> Result<Option<Vec<usize>>, ApplyError> {
    for c in controls {
        if c.qudit >= target {
            return Err(ApplyError::ControlNotAboveTarget {
                control: c.qudit,
                target,
            });
        }
        let dim = dims.dim(c.qudit);
        if c.level >= dim {
            return Err(ApplyError::ControlLevelOutOfRange {
                level: c.level,
                dim,
            });
        }
    }
    if controls.len() != target {
        return Ok(None);
    }
    let mut path = vec![usize::MAX; target];
    for c in controls {
        if path[c.qudit] != usize::MAX {
            return Ok(None); // duplicate control on one qudit
        }
        path[c.qudit] = c.level;
    }
    Ok(Some(path))
}

/// One open node of the [`PathEditor`]: a working copy of the node's edge
/// list, the child index the open path descends through, and the weight of
/// the edge that led here (re-multiplied on close).
struct Frame {
    branch: usize,
    edges: Vec<Edge>,
    up: Complex,
}

/// The control-path editor behind [`StateDd::apply_circuit_with`].
///
/// Full-path-controlled instructions touch exactly one root path plus the
/// subtree at their target; consecutive instructions (synthesis order is a
/// DFS over contexts) share long path prefixes. The editor keeps the
/// current path *open* — one [`Frame`] per level, edges editable in place
/// — and only interns a path node when the next instruction leaves it
/// (or the circuit ends). Total path interning drops from
/// `O(instructions × depth)` to `O(context switches)`, which is what makes
/// replay verification affordable next to the pipeline itself.
#[derive(Default)]
struct PathEditor {
    stack: Vec<Frame>,
}

impl PathEditor {
    /// Closes the deepest open frame, interning its edited edges and
    /// patching the parent frame (or the diagram root).
    fn close_one(&mut self, state: &mut StateDd) -> Result<(), ArenaOverflow> {
        let frame = self.stack.pop().expect("close_one on an open frame");
        let level = self.stack.len();
        let interned = state.arena.intern_normalized(level, frame.edges)?;
        let tol = state.tolerance().value();
        let combined = Edge::new(frame.up * interned.weight, interned.target);
        let combined = if combined.is_zero(tol) {
            Edge::ZERO
        } else {
            combined
        };
        if let Some(parent) = self.stack.last_mut() {
            parent.edges[parent.branch] = combined;
        } else if combined.is_zero(tol) {
            state.root = NodeRef::Terminal;
            state.root_weight = Complex::ZERO;
        } else {
            state.root = combined.target;
            // Unitary circuits preserve the norm; keep only the phase,
            // exactly as the generic per-instruction path does.
            let total = state.root_weight * combined.weight;
            state.root_weight = Complex::cis(total.arg());
        }
        Ok(())
    }

    /// Closes every open frame (e.g. before compaction or a generic-path
    /// instruction).
    fn close_all(&mut self, state: &mut StateDd) -> Result<(), ArenaOverflow> {
        while !self.stack.is_empty() {
            self.close_one(state)?;
        }
        Ok(())
    }

    /// Applies `matrix` on `target` under the full control `path`
    /// (`path[q]` = required level of qudit `q`, for all `q < target`).
    fn apply(
        &mut self,
        state: &mut StateDd,
        cache: &mut ComputeCache,
        path: &[usize],
        target: usize,
        matrix: &CMatrix,
    ) -> Result<(), ArenaOverflow> {
        let tol = state.tolerance().value();
        // Keep the shared prefix open, close what diverges.
        let mut common = 0;
        while common < self.stack.len()
            && common < target
            && self.stack[common].branch == path[common]
        {
            common += 1;
        }
        while self.stack.len() > common {
            self.close_one(state)?;
        }
        // Open the remaining levels of this instruction's path.
        while self.stack.len() < target {
            let level = self.stack.len();
            let into = match self.stack.last() {
                Some(parent) => parent.edges[parent.branch],
                None => match state.root {
                    // A zero diagram: controlled gates act on nothing.
                    NodeRef::Terminal => return Ok(()),
                    NodeRef::Node(_) => Edge::new(Complex::ONE, state.root),
                },
            };
            if into.is_zero(tol) {
                // The controlled branch carries no amplitude — the whole
                // instruction is a no-op. Frames opened so far stay open
                // (they are on the instruction's valid prefix).
                return Ok(());
            }
            let id = into
                .target
                .id()
                .expect("diagram levels are dense above the terminal");
            let edges = state.arena.node(id).edges().to_vec();
            self.stack.push(Frame {
                branch: path[level],
                edges,
                up: into.weight,
            });
        }
        // With the path open, transform the target subtree in place.
        let sub = match self.stack.last() {
            Some(frame) => frame.edges[frame.branch],
            None => match state.root {
                // Uncontrolled instruction on a zero diagram.
                NodeRef::Terminal => return Ok(()),
                NodeRef::Node(_) => Edge::new(Complex::ONE, state.root),
            },
        };
        if sub.is_zero(tol) {
            return Ok(());
        }
        let id = sub
            .target
            .id()
            .expect("diagram levels are dense above the terminal");
        cache.begin_instruction();
        let transformed = {
            let mut ctx = ApplyCtx {
                arena: &mut state.arena,
                cache,
                tol,
                controls: &[],
                target,
                matrix,
            };
            ctx.rec(id, 0)?
        };
        let replaced = if transformed.is_zero(tol) {
            Edge::ZERO
        } else {
            Edge::new(sub.weight * transformed.weight, transformed.target)
        };
        match self.stack.last_mut() {
            Some(frame) => frame.edges[frame.branch] = replaced,
            None => {
                // target == 0: the transform rewrote the root node itself.
                if replaced.is_zero(tol) {
                    state.root = NodeRef::Terminal;
                    state.root_weight = Complex::ZERO;
                } else {
                    state.root = replaced.target;
                    let total = state.root_weight * replaced.weight;
                    state.root_weight = Complex::cis(total.arg());
                }
            }
        }
        Ok(())
    }
}

/// The recursive transform of one instruction, operating inside the
/// diagram's own arena.
struct ApplyCtx<'a> {
    arena: &'a mut DdArena,
    cache: &'a mut ComputeCache,
    tol: f64,
    /// Controls sorted by qudit (all above the target level).
    controls: &'a [(usize, usize)],
    target: usize,
    matrix: &'a CMatrix,
}

impl ApplyCtx<'_> {
    /// Weighted sum of subtree edges, all rooted at the same level,
    /// producing a normalized interned edge. Summing n-ary (instead of
    /// folding binary additions) never allocates intermediate partial-sum
    /// nodes, so the arena only ever holds nodes of the final diagram.
    fn sum_edges(&mut self, terms: Vec<Edge>) -> Result<Edge, ArenaOverflow> {
        let tol = self.tol;
        let mut terms: Vec<Edge> = terms.into_iter().filter(|e| !e.is_zero(tol)).collect();
        match terms.len() {
            0 => return Ok(Edge::ZERO),
            1 => return Ok(terms[0]),
            _ => {}
        }
        if terms[0].target.is_terminal() {
            // Below the last level only terminal targets occur.
            debug_assert!(terms.iter().all(|e| e.target.is_terminal()));
            let w = terms.iter().fold(Complex::ZERO, |acc, e| acc + e.weight);
            return Ok(if w.is_zero(tol) {
                Edge::ZERO
            } else {
                Edge::new(w, NodeRef::Terminal)
            });
        }
        // Memoize on the exact sorted term list (addition is commutative).
        terms.sort_by_key(|e| (e.target, e.weight.re.to_bits(), e.weight.im.to_bits()));
        let key: Vec<(u64, u64, NodeRef)> = terms
            .iter()
            .map(|e| (e.weight.re.to_bits(), e.weight.im.to_bits(), e.target))
            .collect();
        if let Some(&done) = self.cache.sum.get(&key) {
            return Ok(done);
        }
        let first = terms[0].target.id().expect("internal summands");
        let (level, d) = {
            let node = self.arena.node(first);
            (node.level(), node.dimension())
        };
        let mut edges = Vec::with_capacity(d);
        for k in 0..d {
            let mut sub = Vec::with_capacity(terms.len());
            for t in &terms {
                let id = t.target.id().expect("summands share the level");
                let e = self.arena.node(id).edges()[k];
                if !e.is_zero(tol) {
                    sub.push(Edge::new(t.weight * e.weight, e.target));
                }
            }
            edges.push(self.sum_edges(sub)?);
        }
        let out = self.arena.intern_normalized(level, edges)?;
        self.cache.sum.insert(key, out);
        Ok(out)
    }

    /// Transforms the subtree of `id` by the instruction, with `ctrl_idx`
    /// controls (sorted by qudit) still pending. Returns the normalized
    /// upward edge of the transformed subtree; untouched children are
    /// shared with the source by reference.
    fn rec(&mut self, id: NodeId, ctrl_idx: usize) -> Result<Edge, ArenaOverflow> {
        if let Some(&done) = self.cache.rec.get(&(id, ctrl_idx)) {
            return Ok(done);
        }
        let (level, src_edges) = {
            let node = self.arena.node(id);
            (node.level(), node.edges().to_vec())
        };

        let new = if level == self.target {
            // All controls consumed (they sit above the target).
            let d = src_edges.len();
            let mut edges = Vec::with_capacity(d);
            for j in 0..d {
                let mut terms = Vec::with_capacity(d);
                for (k, e) in src_edges.iter().enumerate() {
                    let coeff = self.matrix.get(j, k);
                    if coeff.is_zero(self.tol) || e.is_zero(self.tol) {
                        continue;
                    }
                    terms.push(Edge::new(coeff * e.weight, e.target));
                }
                edges.push(self.sum_edges(terms)?);
            }
            self.arena.intern_normalized(level, edges)?
        } else {
            let pending = self.controls.get(ctrl_idx).copied();
            let mut edges = Vec::with_capacity(src_edges.len());
            for (k, e) in src_edges.iter().enumerate() {
                if e.is_zero(self.tol) {
                    edges.push(Edge::ZERO);
                    continue;
                }
                let edge = match e.target {
                    // Cannot occur above the target level in a well-formed
                    // diagram; kept as an identity for robustness.
                    NodeRef::Terminal => *e,
                    NodeRef::Node(cid) => match pending {
                        Some((cq, cl)) if cq == level && k != cl => {
                            // Control not satisfied: the whole subtree is
                            // untouched and shared as-is.
                            *e
                        }
                        Some((cq, _)) if cq == level => {
                            let child = self.rec(cid, ctrl_idx + 1)?;
                            Edge::new(e.weight * child.weight, child.target)
                        }
                        _ => {
                            let child = self.rec(cid, ctrl_idx)?;
                            Edge::new(e.weight * child.weight, child.target)
                        }
                    },
                };
                edges.push(edge);
            }
            self.arena.intern_normalized(level, edges)?
        };
        self.cache.rec.insert((id, ctrl_idx), new);
        Ok(new)
    }
}

impl StateDd {
    /// The product ground state `|0…0⟩` as a diagram (one node per level).
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::StateDd;
    /// use mdq_num::radix::Dims;
    ///
    /// let dims = Dims::new(vec![3, 6, 2])?;
    /// let dd = StateDd::ground(&dims);
    /// assert_eq!(dd.node_count(), 3);
    /// assert!((dd.amplitude(&[0, 0, 0]).abs() - 1.0).abs() < 1e-12);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn ground(dims: &Dims) -> StateDd {
        Self::ground_in(dims, DdArena::new(Tolerance::default()))
    }

    /// [`StateDd::ground`] built into a caller-provided (reset) arena, so
    /// repeated replays — e.g. verification jobs on a long-lived worker —
    /// reuse one grown node store instead of allocating per replay.
    #[must_use]
    pub fn ground_in(dims: &Dims, mut arena: DdArena) -> StateDd {
        let mut below = NodeRef::Terminal;
        for level in (0..dims.len()).rev() {
            let mut edges = vec![Edge::ZERO; dims.dim(level)];
            edges[0] = Edge::new(Complex::ONE, below);
            below = arena
                .intern(level, edges)
                .expect("ground diagram has one node per level");
        }
        StateDd::from_parts(dims.clone(), arena, below, Complex::ONE, true)
    }

    /// Applies one circuit instruction to the diagram, returning the new
    /// diagram (decision-diagram simulation, cf. reference \[12\]).
    ///
    /// All control qudits must be more significant than the target (which
    /// holds for every instruction the synthesizer emits); see
    /// [`ApplyError::ControlNotAboveTarget`]. The result shares every
    /// untouched subtree with `self` structurally and is canonical.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] for out-of-range targets, below-target
    /// controls, out-of-range control levels, or arena exhaustion.
    pub fn apply(&self, instruction: &mdq_circuit::Instruction) -> Result<StateDd, ApplyError> {
        let mut out = self.clone();
        let mut cache = ComputeCache::new();
        out.apply_mut_with(instruction, &mut cache)?;
        Ok(out.compacted())
    }

    /// Applies one instruction in place, interning the transformed nodes
    /// into the diagram's own arena.
    ///
    /// Repeated in-place applications accumulate superseded nodes in the
    /// arena (they are dropped by the next compaction); prefer
    /// [`StateDd::apply_circuit`] for whole circuits, which compacts
    /// automatically.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] as [`StateDd::apply`] does; on error the
    /// represented state is unchanged.
    pub fn apply_mut(&mut self, instruction: &mdq_circuit::Instruction) -> Result<(), ApplyError> {
        let mut cache = ComputeCache::new();
        self.apply_mut_with(instruction, &mut cache)
    }

    /// [`StateDd::apply_mut`] with a caller-provided [`ComputeCache`], so a
    /// sequence of in-place applications can reuse one set of memo tables —
    /// the cache is cleared (capacity retained) at the start of every call.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] as [`StateDd::apply`] does; on error the
    /// represented state is unchanged.
    pub fn apply_mut_with(
        &mut self,
        instruction: &mdq_circuit::Instruction,
        cache: &mut ComputeCache,
    ) -> Result<(), ApplyError> {
        let target = instruction.qudit;
        if target >= self.dims.len() {
            return Err(ApplyError::TargetOutOfRange { qudit: target });
        }
        let matrix = instruction.gate.matrix(self.dims.dim(target));
        self.apply_matrix_mut_with(target, &instruction.controls, &matrix, cache, false)
    }

    /// Applies an arbitrary `d×d` unitary on `target` under `controls`, in
    /// place — the shared engine behind [`StateDd::apply_mut_with`] and the
    /// gate-fused [`StateDd::apply_circuit_with`] replay path.
    fn apply_matrix_mut_with(
        &mut self,
        target: usize,
        instruction_controls: &[mdq_circuit::Control],
        matrix: &CMatrix,
        cache: &mut ComputeCache,
        keep_sums: bool,
    ) -> Result<(), ApplyError> {
        if target >= self.dims.len() {
            return Err(ApplyError::TargetOutOfRange { qudit: target });
        }
        let mut controls: Vec<(usize, usize)> = Vec::with_capacity(instruction_controls.len());
        for c in instruction_controls {
            if c.qudit >= target {
                return Err(ApplyError::ControlNotAboveTarget {
                    control: c.qudit,
                    target,
                });
            }
            let dim = self.dims.dim(c.qudit);
            if c.level >= dim {
                return Err(ApplyError::ControlLevelOutOfRange {
                    level: c.level,
                    dim,
                });
            }
            controls.push((c.qudit, c.level));
        }
        controls.sort_unstable();
        let tol = self.tolerance().value();

        // Identity fast path: paper-faithful synthesis keeps zero-angle
        // rotations (they carry Table-1 operation counts), and structured
        // states make them the majority of a circuit. Applying an exact
        // identity is a structural no-op on a canonical diagram, so skip
        // the whole recursion — this is what keeps replay verification
        // within the same order as the pipeline itself.
        if is_identity(matrix) {
            return Ok(());
        }

        if keep_sums {
            cache.begin_instruction();
        } else {
            cache.begin_op();
        }
        let root_edge = match self.root {
            NodeRef::Terminal => Edge::ZERO,
            NodeRef::Node(id) => {
                let mut ctx = ApplyCtx {
                    arena: &mut self.arena,
                    cache,
                    tol,
                    controls: &controls,
                    target,
                    matrix,
                };
                ctx.rec(id, 0)?
            }
        };
        if root_edge.is_zero(tol) {
            self.root = NodeRef::Terminal;
            self.root_weight = Complex::ZERO;
        } else {
            self.root = root_edge.target;
            // Unitary gates preserve the norm; keep only the phase.
            let total = self.root_weight * root_edge.weight;
            self.root_weight = Complex::cis(total.arg());
        }
        // The canonicity flag is preserved, not promoted: on a tree input
        // the control-unsatisfied branches share the tree's unshared
        // duplicate subtrees by reference, so the result only becomes
        // canonical once `compacted()` re-interns everything (which both
        // `apply` and `apply_circuit` do).
        Ok(())
    }

    /// Applies a whole circuit to the diagram (see [`StateDd::apply`]),
    /// threading one arena and one compute cache through every instruction
    /// and compacting the node store when it grows past twice the live
    /// size — one pipeline run, one arena.
    ///
    /// # Errors
    ///
    /// Returns the first [`ApplyError`]; the circuit's register must match
    /// the diagram's.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is defined over a different register.
    pub fn apply_circuit(&self, circuit: &mdq_circuit::Circuit) -> Result<StateDd, ApplyError> {
        let mut cache = ComputeCache::new();
        self.apply_circuit_with(circuit, &mut cache)
    }

    /// [`StateDd::apply_circuit`] with a caller-provided [`ComputeCache`],
    /// so a worker replaying many circuits (e.g. verification jobs in the
    /// batch engine) reuses one set of memo tables across all of them.
    ///
    /// # Errors
    ///
    /// Returns the first [`ApplyError`]; the circuit's register must match
    /// the diagram's.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is defined over a different register.
    pub fn apply_circuit_with(
        &self,
        circuit: &mdq_circuit::Circuit,
        cache: &mut ComputeCache,
    ) -> Result<StateDd, ApplyError> {
        Ok(self
            .clone()
            .apply_circuit_consuming(circuit, cache)?
            .compacted())
    }

    /// The zero-copy core of [`StateDd::apply_circuit_with`]: consumes the
    /// diagram (no arena clone) and skips the final compaction, so the
    /// result's arena may still hold superseded nodes — queries
    /// ([`StateDd::amplitude`], [`StateDd::to_amplitudes`],
    /// [`StateDd::live_node_count`]) are unaffected, but
    /// [`StateDd::node_count`] counts the garbage too. This is the replay
    /// path of verification workers, which evaluate the result once and
    /// then recycle the arena.
    ///
    /// # Errors
    ///
    /// Returns the first [`ApplyError`]; the circuit's register must match
    /// the diagram's.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is defined over a different register.
    pub fn apply_circuit_consuming(
        self,
        circuit: &mdq_circuit::Circuit,
        cache: &mut ComputeCache,
    ) -> Result<StateDd, ApplyError> {
        assert_eq!(
            circuit.dims(),
            &self.dims,
            "circuit register differs from diagram register"
        );
        let mut state = self;
        let mut live = state.arena.len().max(64);
        // The synthesizer emits *runs* of instructions sharing one target
        // and one control set (each diagram node contributes d−1 Givens
        // plus a phase rotation under the same path context). Fuse each
        // run into a single d×d product matrix and apply it once: one
        // diagram traversal instead of d, and zero-angle rotations vanish
        // into the (skipped) identity. Mathematically exact — products of
        // equally-controlled unitaries are the controlled product.
        let instructions: Vec<&mdq_circuit::Instruction> = circuit.iter().collect();
        // One arena for the whole run: the weighted-sum memo stays valid
        // across instructions (see `ComputeCache::begin_instruction`) and
        // is flushed only when compaction replaces the arena.
        cache.begin_op();
        // Consecutive contexts additionally share control-path *prefixes*
        // (synthesis emits them in DFS order), so the path from the root
        // to each target is kept "open" in a frame stack and every path
        // node is re-interned once per context *switch* instead of once
        // per instruction — see `PathEditor`.
        let mut editor = PathEditor::default();
        let mut i = 0;
        while i < instructions.len() {
            let head = instructions[i];
            let target = head.qudit;
            if target >= state.dims.len() {
                return Err(ApplyError::TargetOutOfRange { qudit: target });
            }
            let d = state.dims.dim(target);
            let mut matrix = head.gate.matrix(d);
            let mut j = i + 1;
            while j < instructions.len()
                && instructions[j].qudit == target
                && instructions[j].controls == head.controls
            {
                // Later gates act after earlier ones: U = U_j · … · U_i.
                matrix = &instructions[j].gate.matrix(d) * &matrix;
                j += 1;
            }
            i = j;
            // Control validation must precede the identity skip, so a
            // malformed instruction fails here exactly as it would on the
            // per-instruction path, zero-angle or not.
            let path = full_control_path(&state.dims, target, &head.controls)?;
            if is_identity(&matrix) {
                continue;
            }
            if let Some(path) = path {
                editor.apply(&mut state, cache, &path, target, &matrix)?;
            } else {
                // Sparse control sets (e.g. circuits from reduced diagrams
                // with elided controls) fall back to the generic per-op
                // application, which requires a closed diagram.
                editor.close_all(&mut state)?;
                state.apply_matrix_mut_with(target, &head.controls, &matrix, cache, true)?;
            }
            if state.arena.len() > 2 * live + 1024 {
                // Compaction rebuilds the arena: close the editor (its
                // frames hold node ids) and flush the sum memo.
                editor.close_all(&mut state)?;
                state = state.compacted();
                live = state.arena.len().max(64);
                cache.begin_op();
            }
        }
        editor.close_all(&mut state)?;
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildOptions;
    use mdq_circuit::{Circuit, Control, Gate, Instruction};

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    #[test]
    fn ground_state_diagram() {
        let d = dims(&[3, 2]);
        let dd = StateDd::ground(&d);
        assert!((dd.amplitude(&[0, 0]).abs() - 1.0).abs() < 1e-12);
        assert!(dd.amplitude(&[2, 1]).is_zero(1e-12));
        assert_eq!(dd.node_count(), 2);
        assert!(dd.is_canonical());
    }

    #[test]
    fn fourier_on_ground_gives_uniform_qudit() {
        let d = dims(&[3]);
        let dd = StateDd::ground(&d)
            .apply(&Instruction::local(0, Gate::fourier()))
            .unwrap();
        let a = 1.0 / 3.0_f64.sqrt();
        for k in 0..3 {
            assert!((dd.amplitude(&[k]).abs() - a).abs() < 1e-12);
        }
    }

    #[test]
    fn ghz_circuit_on_diagram_matches_dense_simulation() {
        let d = dims(&[3, 3]);
        let mut c = Circuit::new(d.clone());
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::shift(1),
            vec![Control::new(0, 1)],
        ))
        .unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::shift(2),
            vec![Control::new(0, 2)],
        ))
        .unwrap();
        let dd = StateDd::ground(&d).apply_circuit(&c).unwrap();
        for k in 0..3 {
            assert!(
                (dd.amplitude(&[k, k]).norm_sqr() - 1.0 / 3.0).abs() < 1e-12,
                "component {k}"
            );
        }
        assert!(dd.amplitude(&[0, 1]).is_zero(1e-12));
    }

    #[test]
    fn apply_matches_dense_vector_on_random_states() {
        let d = dims(&[3, 2, 4]);
        let n = d.space_size();
        let amps: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin() + 0.3, (i as f64 * 0.4).cos()))
            .collect();
        let norm = mdq_num::norm(&amps);
        let amps: Vec<Complex> = amps.into_iter().map(|a| a / norm).collect();
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();

        let instructions = [
            Instruction::local(1, Gate::givens(0, 1, 1.1, -0.4)),
            Instruction::controlled(2, Gate::givens(1, 3, 0.6, 0.2), vec![Control::new(0, 1)]),
            Instruction::controlled(
                2,
                Gate::z_rotation(0, 2, 0.9),
                vec![Control::new(0, 2), Control::new(1, 1)],
            ),
            Instruction::local(0, Gate::fourier()),
            Instruction::local(2, Gate::shift(3)),
        ];
        let mut expect = amps;
        let mut state = dd;
        for instr in &instructions {
            state = state.apply(instr).unwrap();
            // Dense reference: apply the full matrix manually.
            expect = dense_apply(&d, &expect, instr);
            let got = state.to_amplitudes();
            let f = mdq_num::fidelity(&got, &expect);
            assert!((f - 1.0).abs() < 1e-9, "fidelity {f} after {instr}");
        }
    }

    /// Minimal dense reference implementation for the test above.
    fn dense_apply(d: &Dims, amps: &[Complex], instr: &Instruction) -> Vec<Complex> {
        let target = instr.qudit;
        let dt = d.dim(target);
        let strides = d.strides();
        let m = instr.gate.matrix(dt);
        let mut out = amps.to_vec();
        for base in 0..amps.len() {
            if !(base / strides[target]).is_multiple_of(dt) {
                continue;
            }
            if !instr
                .controls
                .iter()
                .all(|c| (base / strides[c.qudit]) % d.dim(c.qudit) == c.level)
            {
                continue;
            }
            let fiber: Vec<Complex> = (0..dt).map(|k| amps[base + k * strides[target]]).collect();
            let new = m.mul_vec(&fiber);
            for (k, v) in new.into_iter().enumerate() {
                out[base + k * strides[target]] = v;
            }
        }
        out
    }

    #[test]
    fn apply_mut_matches_apply() {
        let d = dims(&[3, 3]);
        let mut state = StateDd::ground(&d);
        let fresh = state
            .apply(&Instruction::local(0, Gate::fourier()))
            .unwrap();
        state
            .apply_mut(&Instruction::local(0, Gate::fourier()))
            .unwrap();
        assert!((state.fidelity(&fresh) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_shares_untouched_subtrees_in_one_arena() {
        // A local gate on the most significant qudit must not rebuild the
        // lower levels: the result reuses them in the same arena, so the
        // compacted node count stays minimal.
        let d = dims(&[3, 3, 3]);
        let mut c = Circuit::new(d.clone());
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        let state = StateDd::ground(&d).apply_circuit(&c).unwrap();
        // Uniform ⊗ |0⟩ ⊗ |0⟩: three nodes, one per level.
        assert_eq!(state.node_count(), 3);
        assert!(state.is_canonical());
        assert!(state.check_canonical());
    }

    #[test]
    fn apply_mut_on_tree_does_not_claim_canonicity() {
        // A control-unsatisfied branch shares the tree's unshared duplicate
        // subtrees by reference, so the in-place result must keep the
        // non-canonical flag (reduce() then performs a real merge); the
        // compacting apply() re-interns everything and is canonical.
        let d = dims(&[3, 2]);
        let a = Complex::real(1.0 / 6.0_f64.sqrt());
        let tree = StateDd::from_amplitudes(
            &d,
            &[a; 6],
            BuildOptions::default().keep_zero_subtrees(true),
        )
        .unwrap();
        let instr = Instruction::controlled(1, Gate::fourier(), vec![Control::new(0, 2)]);
        let mut in_place = tree.clone();
        in_place.apply_mut(&instr).unwrap();
        assert!(!in_place.is_canonical());
        let reduced = in_place.reduce();
        assert!(reduced.is_canonical());
        let compacting = tree.apply(&instr).unwrap();
        assert!(compacting.is_canonical());
        assert!(compacting.check_canonical());
        assert!((in_place.fidelity(&compacting) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_rejects_below_target_controls() {
        let d = dims(&[2, 2]);
        let dd = StateDd::ground(&d);
        let err = dd
            .apply(&Instruction::controlled(
                0,
                Gate::shift(1),
                vec![Control::new(1, 1)],
            ))
            .unwrap_err();
        assert_eq!(
            err,
            ApplyError::ControlNotAboveTarget {
                control: 1,
                target: 0
            }
        );
    }

    #[test]
    fn apply_rejects_bad_target_and_levels() {
        let d = dims(&[2, 3]);
        let dd = StateDd::ground(&d);
        assert_eq!(
            dd.apply(&Instruction::local(5, Gate::shift(1)))
                .unwrap_err(),
            ApplyError::TargetOutOfRange { qudit: 5 }
        );
        assert_eq!(
            dd.apply(&Instruction::controlled(
                1,
                Gate::shift(1),
                vec![Control::new(0, 2)]
            ))
            .unwrap_err(),
            ApplyError::ControlLevelOutOfRange { level: 2, dim: 2 }
        );
    }

    #[test]
    fn apply_surfaces_arena_overflow() {
        let d = dims(&[2, 2]);
        let a = Complex::real(0.5);
        // 3 nodes fit exactly; applying a Fourier gate needs to intern new
        // nodes beyond the cap.
        let dd =
            StateDd::from_amplitudes(&d, &[a, a, a, -a], BuildOptions::default().node_limit(3))
                .unwrap();
        assert_eq!(dd.node_count(), 3);
        let err = dd
            .apply(&Instruction::local(1, Gate::fourier()))
            .unwrap_err();
        assert!(matches!(err, ApplyError::ArenaOverflow { limit: 3 }));
    }

    #[test]
    fn applied_diagrams_stay_normalized() {
        let d = dims(&[4, 3]);
        let mut state = StateDd::ground(&d);
        for instr in [
            Instruction::local(0, Gate::fourier()),
            Instruction::controlled(1, Gate::givens(0, 2, 0.7, 0.1), vec![Control::new(0, 3)]),
            Instruction::local(1, Gate::shift(2)),
        ] {
            state = state.apply(&instr).unwrap();
            for node in state.nodes() {
                let s: f64 = node.edges().iter().map(|e| e.weight.norm_sqr()).sum();
                assert!((s - 1.0).abs() < 1e-9, "node norm {s} after {instr}");
            }
            assert!((state.root().0.abs() - 1.0).abs() < 1e-9);
        }
    }

    /// A synthesized-shape circuit: full control paths, DFS context order,
    /// zero-angle (identity) rotations mixed in — the shape the fused
    /// path editor of `apply_circuit_with` is built for.
    fn synthesized_shape_circuit(d: &Dims) -> Circuit {
        let mut c = Circuit::new(d.clone());
        c.push(Instruction::local(0, Gate::givens(0, 1, 0.7, 0.3)))
            .unwrap();
        c.push(Instruction::local(0, Gate::z_rotation(0, 1, 0.4)))
            .unwrap();
        for l0 in 0..d.dim(0) {
            // A zero-angle rotation (identity) in every context.
            c.push(Instruction::controlled(
                1,
                Gate::givens(0, 1, 0.0, -std::f64::consts::FRAC_PI_2),
                vec![Control::new(0, l0)],
            ))
            .unwrap();
            c.push(Instruction::controlled(
                1,
                Gate::givens(1, 2, 0.5 + 0.2 * l0 as f64, 0.1),
                vec![Control::new(0, l0)],
            ))
            .unwrap();
            for l1 in 0..2 {
                c.push(Instruction::controlled(
                    2,
                    Gate::givens(0, 1, 0.3 * (1 + l1) as f64, -0.2),
                    vec![Control::new(0, l0), Control::new(1, l1)],
                ))
                .unwrap();
            }
        }
        c
    }

    #[test]
    fn fused_circuit_application_matches_per_instruction() {
        let d = dims(&[3, 3, 2]);
        let c = synthesized_shape_circuit(&d);
        // Reference: strictly per-instruction application.
        let mut reference = StateDd::ground(&d);
        for instr in c.iter() {
            reference = reference.apply(instr).unwrap();
        }
        // Fused + path-edited whole-circuit application.
        let fused = StateDd::ground(&d).apply_circuit(&c).unwrap();
        assert!(
            (fused.fidelity(&reference) - 1.0).abs() < 1e-9,
            "fidelity {}",
            fused.fidelity(&reference)
        );
        assert!(fused.is_canonical());
        assert!(fused.check_canonical());
    }

    #[test]
    fn mixed_full_and_sparse_control_paths_agree() {
        // Interleave full-path ops (path-editor fast path) with ops whose
        // control set skips a level (generic fallback): the editor must
        // close cleanly between them.
        let d = dims(&[3, 2, 3]);
        let mut c = Circuit::new(d.clone());
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::givens(0, 1, 0.8, 0.0),
            vec![Control::new(0, 1)],
        ))
        .unwrap();
        // Sparse controls: qudit 1 is skipped.
        c.push(Instruction::controlled(
            2,
            Gate::shift(1),
            vec![Control::new(0, 1)],
        ))
        .unwrap();
        c.push(Instruction::controlled(
            2,
            Gate::givens(1, 2, 0.4, 0.2),
            vec![Control::new(0, 2), Control::new(1, 1)],
        ))
        .unwrap();
        let mut reference = StateDd::ground(&d);
        for instr in c.iter() {
            reference = reference.apply(instr).unwrap();
        }
        let fused = StateDd::ground(&d).apply_circuit(&c).unwrap();
        assert!((fused.fidelity(&reference) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consuming_application_matches_compacted_result() {
        let d = dims(&[3, 3, 2]);
        let c = synthesized_shape_circuit(&d);
        let compacted = StateDd::ground(&d).apply_circuit(&c).unwrap();
        let mut cache = ComputeCache::new();
        let raw = StateDd::ground(&d)
            .apply_circuit_consuming(&c, &mut cache)
            .unwrap();
        // Same state, and the live node count agrees with the compacted
        // diagram even though the raw arena may hold superseded nodes.
        assert!((raw.fidelity(&compacted) - 1.0).abs() < 1e-12);
        assert_eq!(raw.live_node_count(), compacted.node_count());
        assert!(raw.node_count() >= raw.live_node_count());
    }

    #[test]
    fn identity_instructions_still_validate_their_controls() {
        // The identity fast path must not skip validation: a zero-angle
        // gate with a below-target control fails whole-circuit application
        // exactly as it fails the per-instruction path.
        let d = dims(&[2, 2]);
        let bad =
            Instruction::controlled(0, Gate::givens(0, 1, 0.0, 0.0), vec![Control::new(1, 1)]);
        let mut c = Circuit::new(d.clone());
        c.push(bad.clone()).unwrap();
        let per_instruction = StateDd::ground(&d).apply(&bad).unwrap_err();
        let whole_circuit = StateDd::ground(&d).apply_circuit(&c).unwrap_err();
        assert_eq!(per_instruction, whole_circuit);
        assert!(matches!(
            whole_circuit,
            ApplyError::ControlNotAboveTarget {
                control: 1,
                target: 0
            }
        ));
    }

    #[test]
    fn identity_only_circuits_leave_the_state_untouched() {
        let d = dims(&[3, 2]);
        let mut c = Circuit::new(d.clone());
        c.push(Instruction::local(0, Gate::givens(0, 1, 0.0, 0.0)))
            .unwrap();
        c.push(Instruction::controlled(
            1,
            Gate::z_rotation(0, 1, 0.0),
            vec![Control::new(0, 1)],
        ))
        .unwrap();
        let a = Complex::real(1.0 / 6.0_f64.sqrt());
        let dd = StateDd::from_amplitudes(&d, &[a; 6], BuildOptions::default()).unwrap();
        let out = dd.apply_circuit(&c).unwrap();
        assert_eq!(out.node_count(), dd.node_count());
        assert!((out.fidelity(&dd) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn diagram_simulation_scales_to_large_ghz() {
        // 16 qutrits: 43 million amplitudes; the diagram never exceeds a few
        // dozen nodes while the GHZ-style circuit runs.
        let n = 16;
        let d = Dims::uniform(n, 3).unwrap();
        let mut c = Circuit::new(d.clone());
        c.push(Instruction::local(0, Gate::fourier())).unwrap();
        for q in 1..n {
            // Chain the correlation down the register.
            c.push(Instruction::controlled(
                q,
                Gate::shift(1),
                vec![Control::new(q - 1, 1)],
            ))
            .unwrap();
            c.push(Instruction::controlled(
                q,
                Gate::shift(2),
                vec![Control::new(q - 1, 2)],
            ))
            .unwrap();
        }
        let state = StateDd::ground(&d).apply_circuit(&c).unwrap();
        assert!(state.node_count() <= 3 * n);
        let a = 1.0 / 3.0_f64.sqrt();
        for k in 0..3 {
            let digits = vec![k; n];
            assert!((state.amplitude(&digits).abs() - a).abs() < 1e-9);
        }
    }
}
