//! Node and edge representation of the decision diagram.

use std::fmt;

use mdq_num::Complex;

/// Index of an internal node inside a [`StateDd`](crate::StateDd) arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Converts an index already known to be in range (an existing arena
    /// position). Growth paths go through [`NodeId::try_new`] so that arena
    /// exhaustion surfaces as an error instead of a panic.
    pub(crate) fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("index exceeds existing arena bounds"))
    }

    /// Fallible conversion used when allocating new nodes; `None` when the
    /// `u32` index space is exhausted.
    pub(crate) fn try_new(index: usize) -> Option<Self> {
        u32::try_from(index).ok().map(NodeId)
    }

    /// The raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Target of an edge: either the shared terminal or an internal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// The unique terminal node (no successors).
    Terminal,
    /// An internal node.
    Node(NodeId),
}

impl NodeRef {
    /// The node id if this reference points to an internal node.
    #[must_use]
    pub fn id(self) -> Option<NodeId> {
        match self {
            NodeRef::Terminal => None,
            NodeRef::Node(id) => Some(id),
        }
    }

    /// Whether this reference is the terminal.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, NodeRef::Terminal)
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Terminal => write!(f, "T"),
            NodeRef::Node(id) => write!(f, "{id}"),
        }
    }
}

/// A weighted successor edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Complex weight multiplied along the path.
    pub weight: Complex,
    /// Successor of the edge.
    pub target: NodeRef,
}

impl Edge {
    /// An explicit zero edge (weight 0, pointing at the terminal).
    pub const ZERO: Edge = Edge {
        weight: Complex::ZERO,
        target: NodeRef::Terminal,
    };

    /// Creates an edge.
    #[must_use]
    pub fn new(weight: Complex, target: NodeRef) -> Self {
        Edge { weight, target }
    }

    /// Whether the edge weight is within `tol` of zero.
    #[must_use]
    pub fn is_zero(&self, tol: f64) -> bool {
        self.weight.is_zero(tol)
    }
}

/// An internal decision-diagram node: one level (qudit) and one successor
/// edge per basis level of that qudit.
///
/// The number of successors equals the local dimension of the node's qudit,
/// which is what makes the diagram *mixed-dimensional*: nodes at different
/// levels may have different numbers of edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    level: usize,
    edges: Vec<Edge>,
}

impl Node {
    pub(crate) fn new(level: usize, edges: Vec<Edge>) -> Self {
        Node { level, edges }
    }

    /// The diagram level (0 = root level = most significant qudit).
    #[must_use]
    pub fn level(&self) -> usize {
        self.level
    }

    /// The successor edges; the length equals the qudit's local dimension.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The local dimension of the node's qudit.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.edges.len()
    }

    /// Indices of the successor edges whose weight is not within `tol` of 0.
    pub fn nonzero_edges(&self, tol: f64) -> impl Iterator<Item = (usize, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| !e.is_zero(tol))
    }

    /// If every nonzero edge points to the same *internal* node, returns that
    /// node together with the count of nonzero edges.
    ///
    /// When the count is at least 2 the node encodes a tensor product
    /// `(Σ w_k |k⟩) ⊗ ψ_child` — the paper's §4.3 reduction pattern that
    /// allows the synthesizer to drop this qudit from the control set.
    #[must_use]
    pub fn common_child(&self, tol: f64) -> Option<(NodeId, usize)> {
        let mut common: Option<NodeId> = None;
        let mut count = 0;
        for (_, edge) in self.nonzero_edges(tol) {
            let id = edge.target.id()?;
            match common {
                None => common = Some(id),
                Some(c) if c == id => {}
                Some(_) => return None,
            }
            count += 1;
        }
        common.map(|c| (c, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex {
        Complex::real(re)
    }

    #[test]
    fn node_reports_dimension() {
        let node = Node::new(1, vec![Edge::ZERO; 5]);
        assert_eq!(node.dimension(), 5);
        assert_eq!(node.level(), 1);
    }

    #[test]
    fn nonzero_edges_filters_by_tolerance() {
        let node = Node::new(
            0,
            vec![
                Edge::new(c(0.9), NodeRef::Terminal),
                Edge::new(c(1e-12), NodeRef::Terminal),
                Edge::new(c(0.1), NodeRef::Terminal),
            ],
        );
        let nz: Vec<usize> = node.nonzero_edges(1e-9).map(|(i, _)| i).collect();
        assert_eq!(nz, vec![0, 2]);
    }

    #[test]
    fn common_child_detects_tensor_pattern() {
        let child = NodeRef::Node(NodeId::new(7));
        let node = Node::new(
            0,
            vec![
                Edge::new(c(0.6), child),
                Edge::new(c(0.8), child),
                Edge::ZERO,
            ],
        );
        assert_eq!(node.common_child(1e-9), Some((NodeId::new(7), 2)));
    }

    #[test]
    fn common_child_rejects_mixed_targets() {
        let node = Node::new(
            0,
            vec![
                Edge::new(c(0.6), NodeRef::Node(NodeId::new(1))),
                Edge::new(c(0.8), NodeRef::Node(NodeId::new(2))),
            ],
        );
        assert_eq!(node.common_child(1e-9), None);
    }

    #[test]
    fn common_child_rejects_terminal_targets() {
        let node = Node::new(
            0,
            vec![
                Edge::new(c(0.6), NodeRef::Terminal),
                Edge::new(c(0.8), NodeRef::Terminal),
            ],
        );
        assert_eq!(node.common_child(1e-9), None);
    }

    #[test]
    fn common_child_of_all_zero_node_is_none() {
        let node = Node::new(0, vec![Edge::ZERO, Edge::ZERO]);
        assert_eq!(node.common_child(1e-9), None);
    }

    #[test]
    fn single_nonzero_edge_counts_as_one() {
        let node = Node::new(
            0,
            vec![Edge::new(c(1.0), NodeRef::Node(NodeId::new(3))), Edge::ZERO],
        );
        assert_eq!(node.common_child(1e-9), Some((NodeId::new(3), 1)));
    }

    #[test]
    fn node_ref_display() {
        assert_eq!(NodeRef::Terminal.to_string(), "T");
        assert_eq!(NodeRef::Node(NodeId::new(4)).to_string(), "n4");
    }
}
