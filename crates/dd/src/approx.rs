//! Fidelity-driven approximation of decision diagrams.
//!
//! This generalizes the qubit approximation of Hillmich, Zulehner, Kueng,
//! Markov, Wille (*"Approximating decision diagrams for quantum circuit
//! simulation"*, ACM TQC 2022) to mixed-dimensional diagrams, as described
//! in the paper's §4.3: every node's *contribution* is the total squared
//! magnitude of the amplitudes whose paths cross it; nodes are removed in
//! ascending order of contribution until the removed mass would exceed the
//! chosen infidelity budget, and the diagram is renormalized.

use std::fmt;

use mdq_num::Complex;

use crate::arena::DdArena;
use crate::node::{Edge, NodeId, NodeRef};
use crate::StateDd;

/// Errors produced by [`StateDd::approximate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ApproxError {
    /// The infidelity budget was not inside `[0, 1)`.
    InvalidBudget {
        /// The offending budget.
        budget: f64,
    },
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::InvalidBudget { budget } => {
                write!(f, "infidelity budget must be in [0, 1), got {budget}")
            }
        }
    }
}

impl std::error::Error for ApproxError {}

/// Result of an approximation run.
#[derive(Debug, Clone)]
pub struct Approximation {
    /// The approximated (renormalized) diagram.
    pub dd: StateDd,
    /// Number of nodes removed.
    pub removed_nodes: usize,
    /// Total squared-magnitude mass removed from the state.
    pub pruned_mass: f64,
    /// Lower bound on the fidelity between the original and the
    /// approximated state: `1 − pruned_mass`.
    pub fidelity_lower_bound: f64,
}

impl StateDd {
    /// Approximates the diagram within an infidelity `budget`, removing the
    /// lowest-contribution nodes first (paper §4.3).
    ///
    /// Returns the renormalized diagram together with the removed node count
    /// and the exact pruned probability mass. The fidelity between the
    /// original and the result is exactly `1 − pruned_mass` (the
    /// approximated state is the original with some branches zeroed, then
    /// renormalized), so it never drops below `1 − budget`.
    ///
    /// A `budget` of 0 returns an unchanged (but re-built) diagram. The root
    /// node is never removed.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::InvalidBudget`] if `budget` is not in `[0, 1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::{BuildOptions, StateDd};
    /// use mdq_num::{radix::Dims, Complex};
    ///
    /// // 0.5|00⟩ + 0.4|10⟩ + 0.1|11⟩ amplitude masses (paper Fig. 2 style):
    /// let dims = Dims::new(vec![2, 2])?;
    /// let amps = [
    ///     Complex::real(0.5f64.sqrt()),
    ///     Complex::ZERO,
    ///     Complex::real(0.4f64.sqrt()),
    ///     Complex::real(0.1f64.sqrt()),
    /// ];
    /// let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default())?;
    /// let approx = dd.approximate(0.02)?; // 98 % target fidelity
    /// assert!(approx.fidelity_lower_bound >= 0.98);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn approximate(&self, budget: f64) -> Result<Approximation, ApproxError> {
        if !(0.0..1.0).contains(&budget) || budget.is_nan() {
            return Err(ApproxError::InvalidBudget { budget });
        }

        let contributions = self.contributions();
        let root_id = self.root.id();

        // Candidates in ascending contribution order; the root never goes.
        let mut order: Vec<usize> = (0..self.node_count())
            .filter(|&i| Some(NodeId::new(i)) != root_id)
            .collect();
        order.sort_by(|&a, &b| {
            contributions[a]
                .partial_cmp(&contributions[b])
                .expect("contributions are finite")
        });

        let mut removed = vec![false; self.node_count()];
        let mut remaining = budget;
        let mut removed_nodes = 0;
        for idx in order {
            let c = contributions[idx];
            if c == 0.0 && self.is_canonical() {
                // Canonical diagrams carry no zero-mass *reachable* nodes;
                // a zero contribution marks a superseded node left behind
                // by `apply_mut`. Flag it so the rebuild drops it, but do
                // not report it as an approximation removal.
                removed[idx] = true;
                continue;
            }
            if c > remaining {
                // Contributions are sorted ascending, but ancestors of
                // already-removed nodes keep their full mass; simply stop at
                // the first candidate that does not fit.
                break;
            }
            if self.has_removed_ancestor_mass(idx, &removed) {
                // Mass already accounted for by a removed ancestor: removing
                // this node is free but also pointless — it is unreachable.
                removed[idx] = true;
                continue;
            }
            removed[idx] = true;
            removed_nodes += 1;
            remaining -= c;
        }

        if removed_nodes == 0 && self.is_canonical() && removed.iter().all(|&r| !r) {
            // Canonical diagrams have no zero-mass reachable nodes to shed,
            // so an empty removal set means the rebuild would be the
            // identity: reuse the arena instead of reallocating one.
            return Ok(Approximation {
                dd: self.clone(),
                removed_nodes: 0,
                pruned_mass: 0.0,
                fidelity_lower_bound: 1.0,
            });
        }

        let (dd, survived_mass) = self.rebuild_without(&removed);
        // The greedy budget accounting above is conservative (a removed
        // descendant's mass may be re-counted by a removed ancestor); the
        // rebuilt norm gives the exact surviving mass.
        let pruned_mass = (1.0 - survived_mass).max(0.0);
        Ok(Approximation {
            dd,
            removed_nodes,
            pruned_mass,
            fidelity_lower_bound: 1.0 - pruned_mass,
        })
    }

    /// Whether every path to `idx` passes through a removed node. In a tree
    /// a single parent check suffices; for shared diagrams we
    /// conservatively report `false` (the node's contribution then double
    /// counts at worst, keeping the fidelity bound valid).
    fn has_removed_ancestor_mass(&self, idx: usize, removed: &[bool]) -> bool {
        // Parents are created after children, so scan the tail of the arena.
        let target = NodeRef::Node(NodeId::new(idx));
        let mut parents = self
            .nodes()
            .iter()
            .enumerate()
            .skip(idx + 1)
            .filter(|(_, n)| n.edges().iter().any(|e| e.target == target));
        let all_removed = parents.clone().all(|(p, _)| removed[p]);
        parents.next().is_some() && all_removed
    }

    /// Rebuilds the diagram with the flagged nodes replaced by zero edges,
    /// renormalizing every surviving node bottom-up. Returns the rebuilt
    /// diagram and the surviving squared-magnitude mass.
    ///
    /// Canonical inputs are rebuilt through the interning path (survivors
    /// stay maximally shared — zeroing branches can only create *more*
    /// sharing); Table-1 trees are rebuilt unshared so their structural
    /// metrics keep tree semantics.
    fn rebuild_without(&self, removed: &[bool]) -> (StateDd, f64) {
        let tol = self.tolerance().value();
        let mut arena = DdArena::with_node_limit(self.tolerance(), self.arena().node_limit());
        // memo: old index -> Some((scale, new ref)) once rebuilt.
        let mut memo: Vec<Option<(Complex, NodeRef)>> = vec![None; self.node_count()];

        for (idx, node) in self.nodes().iter().enumerate() {
            if removed[idx] {
                memo[idx] = Some((Complex::ZERO, NodeRef::Terminal));
                continue;
            }
            let edges: Vec<Edge> = node
                .edges()
                .iter()
                .map(|e| {
                    if e.is_zero(tol) {
                        return Edge::ZERO;
                    }
                    match e.target {
                        NodeRef::Terminal => *e,
                        NodeRef::Node(id) => {
                            let (scale, target) =
                                memo[id.index()].expect("child built before parent");
                            let w = e.weight * scale;
                            if w.is_zero(tol) {
                                Edge::ZERO
                            } else {
                                Edge::new(w, target)
                            }
                        }
                    }
                })
                .collect();
            let up = if self.is_canonical() {
                arena
                    .intern_normalized(node.level(), edges)
                    .expect("approximation never exceeds the source arena size")
            } else {
                // Unshared tree path: renormalize in place, drop zero-mass
                // nodes (this is what shrinks the Table-1 trees "for free").
                let mut edges = edges;
                let norm_sqr: f64 = edges.iter().map(|e| e.weight.norm_sqr()).sum();
                let norm = norm_sqr.sqrt();
                if norm <= tol {
                    Edge::ZERO
                } else {
                    for e in &mut edges {
                        e.weight = e.weight / norm;
                    }
                    let target = arena
                        .alloc_unshared(node.level(), edges)
                        .expect("approximation never exceeds the source arena size");
                    Edge::new(Complex::real(norm), target)
                }
            };
            // Children were unit-normalized before, so the rescale factor
            // for parents is exactly the surviving norm (plus any pulled
            // phase on the canonical path).
            memo[idx] = Some(if up.is_zero(tol) {
                (Complex::ZERO, NodeRef::Terminal)
            } else {
                (up.weight, up.target)
            });
        }

        let (root_scale, root) = match self.root {
            NodeRef::Terminal => (Complex::ONE, NodeRef::Terminal),
            NodeRef::Node(id) => memo[id.index()].expect("root visited"),
        };
        // Renormalize the state: keep only the phase of the root weight.
        let root_weight = if root_scale.is_zero(tol) {
            Complex::ZERO
        } else {
            Complex::cis((self.root_weight * root_scale).arg())
        };
        let canonical = self.is_canonical();
        let dd = StateDd::from_parts(self.dims().clone(), arena, root, root_weight, canonical);
        (dd, root_scale.norm_sqr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildOptions;
    use mdq_num::radix::Dims;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn build(d: &Dims, amps: &[Complex]) -> StateDd {
        StateDd::from_amplitudes(d, amps, BuildOptions::default()).unwrap()
    }

    /// The unreduced tree build — the Table-1 reproduction path, where every
    /// branch keeps a private node so per-branch pruning is possible.
    fn tree(d: &Dims, amps: &[Complex]) -> StateDd {
        StateDd::from_amplitudes(d, amps, BuildOptions::default().keep_zero_subtrees(true)).unwrap()
    }

    fn skewed_state() -> (Dims, Vec<Complex>) {
        // Masses 0.5, 0.4, 0.1 over three branches of a [3,2] register.
        let d = dims(&[3, 2]);
        let mut amps = vec![Complex::ZERO; 6];
        amps[d.index_of(&[0, 0])] = Complex::real(0.5f64.sqrt());
        amps[d.index_of(&[1, 0])] = Complex::real(0.4f64.sqrt());
        amps[d.index_of(&[2, 0])] = Complex::real(0.1f64.sqrt());
        (d, amps)
    }

    #[test]
    fn invalid_budget_is_rejected() {
        let (d, amps) = skewed_state();
        let dd = build(&d, &amps);
        assert!(matches!(
            dd.approximate(1.0),
            Err(ApproxError::InvalidBudget { .. })
        ));
        assert!(matches!(
            dd.approximate(-0.1),
            Err(ApproxError::InvalidBudget { .. })
        ));
        assert!(matches!(
            dd.approximate(f64::NAN),
            Err(ApproxError::InvalidBudget { .. })
        ));
    }

    #[test]
    fn zero_budget_removes_nothing() {
        let (d, amps) = skewed_state();
        let dd = build(&d, &amps);
        let approx = dd.approximate(0.0).unwrap();
        assert_eq!(approx.removed_nodes, 0);
        assert_eq!(approx.pruned_mass, 0.0);
        assert!((dd.fidelity(&approx.dd) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prunes_smallest_branch_within_budget() {
        let (d, amps) = skewed_state();
        let dd = tree(&d, &amps);
        // Budget 0.15 allows removing the 0.1 branch but not the 0.4 one.
        let approx = dd.approximate(0.15).unwrap();
        assert!(approx.pruned_mass > 0.09 && approx.pruned_mass < 0.15);
        let f = dd.fidelity(&approx.dd);
        assert!((f - (1.0 - approx.pruned_mass)).abs() < 1e-9);
        assert!(approx.dd.amplitude(&[2, 0]).is_zero(1e-12));
        // Remaining amplitudes renormalized upward.
        assert!(approx.dd.amplitude(&[0, 0]).norm_sqr() > 0.5);
    }

    #[test]
    fn fidelity_equals_one_minus_pruned_mass() {
        let (d, amps) = skewed_state();
        let dd = tree(&d, &amps);
        for budget in [0.05, 0.12, 0.3, 0.6] {
            let approx = dd.approximate(budget).unwrap();
            let f = dd.fidelity(&approx.dd);
            assert!(
                (f - approx.fidelity_lower_bound).abs() < 1e-9,
                "budget {budget}: fidelity {f} vs bound {}",
                approx.fidelity_lower_bound
            );
        }
    }

    #[test]
    fn structured_states_resist_98_percent_budget() {
        // GHZ branches each carry ≥ 1/k ≥ budget mass, so nothing is pruned —
        // matching Table 1 where approximation leaves GHZ/W rows unchanged.
        let d = dims(&[3, 6, 2]);
        let mut amps = vec![Complex::ZERO; d.space_size()];
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        amps[d.index_of(&[0, 0, 0])] = a;
        amps[d.index_of(&[1, 1, 1])] = a;
        let dd = build(&d, &amps);
        let approx = dd.approximate(0.02).unwrap();
        assert_eq!(approx.removed_nodes, 0);
        assert_eq!(approx.dd.edge_count(), dd.edge_count());
    }

    #[test]
    fn large_budget_reduces_diagram_size() {
        let (d, amps) = skewed_state();
        let dd = tree(&d, &amps);
        let approx = dd.approximate(0.55).unwrap();
        assert!(approx.removed_nodes >= 2);
        assert!(approx.dd.edge_count() < dd.edge_count());
        // The dominant branch survives.
        assert!(approx.dd.amplitude(&[0, 0]).norm_sqr() > 0.9);
    }

    #[test]
    fn approximated_diagram_stays_normalized() {
        let (d, amps) = skewed_state();
        let dd = tree(&d, &amps);
        let approx = dd.approximate(0.15).unwrap();
        let total: f64 = approx.dd.to_amplitudes().iter().map(|a| a.norm_sqr()).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for node in approx.dd.nodes() {
            let s: f64 = node.edges().iter().map(|e| e.weight.norm_sqr()).sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn approximate_on_full_tree_prunes_zero_subtrees_for_free() {
        // Zero-contribution nodes of the unreduced tree are removed first at
        // no fidelity cost: the 58-edge GHZ tree shrinks to 20 edges.
        let d = dims(&[3, 6, 2]);
        let mut amps = vec![Complex::ZERO; d.space_size()];
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        amps[d.index_of(&[0, 0, 0])] = a;
        amps[d.index_of(&[1, 1, 1])] = a;
        let full =
            StateDd::from_amplitudes(&d, &amps, BuildOptions::default().keep_zero_subtrees(true))
                .unwrap();
        assert_eq!(full.edge_count(), 58);
        let approx = full.approximate(0.02).unwrap();
        assert_eq!(approx.dd.edge_count(), 20);
        assert!((approx.fidelity_lower_bound - 1.0).abs() < 1e-12);
    }
}
