//! Reduction: hash-consing structurally identical subtrees into shared
//! nodes, and detection of tensor-product ("product") nodes.
//!
//! The paper's §4.3 introduces reduction as "the capability of two edges
//! pointing to the same node whenever it represents two identical sub-trees"
//! and observes that when *all* nonzero edges of a node point to the same
//! child, the node encodes a tensor product between its qudit and the
//! remaining levels, so the synthesizer does not need to control on it.

use std::collections::HashMap;

use mdq_num::ComplexTable;

use crate::node::{Edge, Node, NodeId, NodeRef};
use crate::StateDd;

/// Canonical signature of a node used as the hash-consing key: the level and
/// the canonical id of every (weight, target) pair.
type NodeKey = (usize, Vec<(u32, NodeRef)>);

impl StateDd {
    /// Returns an equivalent diagram in which structurally identical
    /// subtrees are shared (represented by a single node).
    ///
    /// Weights are canonicalized through a tolerance-bucketed
    /// [`ComplexTable`], so subtrees equal up to the diagram tolerance merge
    /// as well. The represented state is unchanged; the node count can only
    /// shrink. Reduction is idempotent.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::{BuildOptions, StateDd};
    /// use mdq_num::{radix::Dims, Complex};
    ///
    /// // (|00⟩ − |11⟩ + |21⟩)/√3 (Fig. 3): the |1⟩-successors of the two
    /// // upper branches are identical and get shared.
    /// let dims = Dims::new(vec![3, 2])?;
    /// let a = 1.0 / 3.0_f64.sqrt();
    /// let mut amps = vec![Complex::ZERO; 6];
    /// amps[0] = Complex::real(a);
    /// amps[3] = Complex::real(-a);
    /// amps[5] = Complex::real(a);
    /// let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default())?;
    /// assert_eq!(dd.reduce().node_count(), dd.node_count() - 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn reduce(&self) -> StateDd {
        let tol = self.tolerance.value();
        let mut table = ComplexTable::new(self.tolerance);
        let mut unique: HashMap<NodeKey, NodeId> = HashMap::new();
        let mut memo: Vec<Option<NodeRef>> = vec![None; self.nodes.len()];
        let mut nodes: Vec<Node> = Vec::new();

        // Bottom-up (children precede parents in the arena).
        for (idx, node) in self.nodes.iter().enumerate() {
            let mut edges = Vec::with_capacity(node.dimension());
            let mut key_parts = Vec::with_capacity(node.dimension());
            let mut all_zero = true;
            for e in node.edges() {
                let (weight, target) = if e.is_zero(tol) {
                    (mdq_num::Complex::ZERO, NodeRef::Terminal)
                } else {
                    all_zero = false;
                    let target = match e.target {
                        NodeRef::Terminal => NodeRef::Terminal,
                        NodeRef::Node(id) => memo[id.index()].expect("child before parent"),
                    };
                    (table.canonicalize(e.weight), target)
                };
                let canon_id = table.insert(weight);
                key_parts.push((canon_id.index() as u32, target));
                edges.push(Edge::new(weight, target));
            }
            if all_zero {
                memo[idx] = Some(NodeRef::Terminal);
                continue;
            }
            let key: NodeKey = (node.level(), key_parts);
            let id = *unique.entry(key).or_insert_with(|| {
                let id = NodeId::new(nodes.len());
                nodes.push(Node::new(node.level(), edges));
                id
            });
            memo[idx] = Some(NodeRef::Node(id));
        }

        let root = match self.root {
            NodeRef::Terminal => NodeRef::Terminal,
            NodeRef::Node(id) => memo[id.index()].expect("root visited"),
        };
        StateDd {
            dims: self.dims.clone(),
            tolerance: self.tolerance,
            nodes,
            root,
            root_weight: self.root_weight,
        }
    }

    /// Ids of nodes whose nonzero edges all point to one shared internal
    /// child, with at least `min_edges` nonzero edges.
    ///
    /// With `min_edges = 2` this is exactly the paper's tensor-product
    /// pattern: the node's qudit factorizes from the rest of the state, so
    /// operations synthesized inside the shared child do not need this qudit
    /// as a control. (`min_edges = 1` additionally elides controls below
    /// single-successor nodes — correct, but not done by the paper; see the
    /// ablation benchmark.)
    ///
    /// Meaningful on reduced diagrams ([`StateDd::reduce`]); on trees every
    /// child is a distinct node and only `min_edges = 1` patterns appear.
    #[must_use]
    pub fn product_nodes(&self, min_edges: usize) -> Vec<NodeId> {
        let tol = self.tolerance.value();
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(idx, node)| {
                node.common_child(tol)
                    .and_then(|(_, count)| (count >= min_edges).then(|| NodeId::new(idx)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{BuildOptions, StateDd};
    use mdq_num::radix::Dims;
    use mdq_num::Complex;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn build(d: &Dims, amps: &[Complex]) -> StateDd {
        StateDd::from_amplitudes(d, amps, BuildOptions::default()).unwrap()
    }

    #[test]
    fn reduce_shares_identical_subtrees() {
        // Fig. 3 state: two identical |1⟩-successor nodes merge.
        let d = dims(&[3, 2]);
        let a = 1.0 / 3.0_f64.sqrt();
        let mut amps = vec![Complex::ZERO; 6];
        amps[d.index_of(&[0, 0])] = Complex::real(a);
        amps[d.index_of(&[1, 1])] = Complex::real(-a);
        amps[d.index_of(&[2, 1])] = Complex::real(a);
        let dd = build(&d, &amps);
        assert_eq!(dd.node_count(), 4);
        let reduced = dd.reduce();
        assert_eq!(reduced.node_count(), 3);
        for (x, y) in dd.to_amplitudes().iter().zip(reduced.to_amplitudes()) {
            assert!(x.approx_eq(y, 1e-12));
        }
    }

    #[test]
    fn reduce_is_idempotent() {
        let d = dims(&[2, 3, 2]);
        let n = d.space_size();
        let amps: Vec<Complex> = (0..n)
            .map(|i| Complex::real(((i % 3) + 1) as f64))
            .collect();
        let once = build(&d, &amps).reduce();
        let twice = once.reduce();
        assert_eq!(once.node_count(), twice.node_count());
        assert_eq!(once.edge_count(), twice.edge_count());
    }

    #[test]
    fn reduce_collapses_uniform_state_to_one_node_per_level() {
        let d = dims(&[3, 4, 2]);
        let n = d.space_size();
        let a = Complex::real(1.0 / (n as f64).sqrt());
        let reduced = build(&d, &vec![a; n]).reduce();
        // A uniform product state has exactly one node per level.
        assert_eq!(reduced.node_count(), d.len());
    }

    #[test]
    fn reduce_on_full_tree_drops_zero_subtrees() {
        let d = dims(&[3, 6, 2]);
        let mut amps = vec![Complex::ZERO; d.space_size()];
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        amps[d.index_of(&[0, 0, 0])] = a;
        amps[d.index_of(&[1, 1, 1])] = a;
        let full =
            StateDd::from_amplitudes(&d, &amps, BuildOptions::default().keep_zero_subtrees(true))
                .unwrap();
        let reduced = full.reduce();
        assert_eq!(reduced.node_count(), 5);
        assert!((reduced.fidelity(&full) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_nodes_detected_on_uniform_state() {
        let d = dims(&[3, 4, 2]);
        let n = d.space_size();
        let a = Complex::real(1.0 / (n as f64).sqrt());
        let reduced = build(&d, &vec![a; n]).reduce();
        // Levels 0 and 1 are product nodes (all edges to the shared child);
        // level 2 points at the terminal and is excluded.
        let products = reduced.product_nodes(2);
        assert_eq!(products.len(), 2);
        let levels: Vec<usize> = products
            .iter()
            .map(|id| reduced.node(*id).level())
            .collect();
        assert!(levels.contains(&0) && levels.contains(&1));
    }

    #[test]
    fn ghz_has_no_product_nodes() {
        let d = dims(&[3, 3]);
        let a = Complex::real(1.0 / 3.0_f64.sqrt());
        let mut amps = vec![Complex::ZERO; 9];
        for k in 0..3 {
            amps[d.index_of(&[k, k])] = a;
        }
        let reduced = build(&d, &amps).reduce();
        assert!(reduced.product_nodes(2).is_empty());
    }

    #[test]
    fn single_successor_products_found_with_min_edges_one() {
        // |1⟩|+⟩ on [3,2]: the root has a single nonzero edge.
        let d = dims(&[3, 2]);
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        let mut amps = vec![Complex::ZERO; 6];
        amps[d.index_of(&[1, 0])] = a;
        amps[d.index_of(&[1, 1])] = a;
        let dd = build(&d, &amps);
        assert_eq!(dd.product_nodes(2).len(), 0);
        assert_eq!(dd.product_nodes(1).len(), 1);
    }

    #[test]
    fn reduce_merges_subtrees_within_tolerance() {
        let d = dims(&[2, 2]);
        let h = 0.5;
        // Two branches whose children differ by 1e-12 — inside tolerance.
        let amps = [
            Complex::real(h),
            Complex::real(h),
            Complex::real(h),
            Complex::real(h + 1e-12),
        ];
        let reduced = build(&d, &amps).reduce();
        assert_eq!(reduced.node_count(), 2);
    }
}
