//! Reduction: hash-consing structurally identical subtrees into shared
//! nodes, and detection of tensor-product ("product") nodes.
//!
//! The paper's §4.3 introduces reduction as "the capability of two edges
//! pointing to the same node whenever it represents two identical sub-trees"
//! and observes that when *all* nonzero edges of a node point to the same
//! child, the node encodes a tensor product between its qudit and the
//! remaining levels, so the synthesizer does not need to control on it.
//!
//! Since the arena refactor, the default builders intern every node through
//! the shared unique table, so their diagrams are already maximally shared
//! and [`StateDd::reduce`] is a structural no-op on them. The pass below
//! only does real work on the unreduced Table-1 trees
//! ([`keep_zero_subtrees`](crate::BuildOptions::keep_zero_subtrees)).

use crate::arena::DdArena;
use crate::node::{NodeId, NodeRef};
use crate::StateDd;

impl StateDd {
    /// Returns an equivalent diagram in which structurally identical
    /// subtrees are shared (represented by a single node).
    ///
    /// Weights are canonicalized through a tolerance-bucketed
    /// [`ComplexTable`](mdq_num::ComplexTable), so subtrees equal up to the
    /// diagram tolerance merge as well. The represented state is unchanged;
    /// the node count can only shrink. Reduction is idempotent.
    ///
    /// On an arena-built ([canonical](StateDd::is_canonical)) diagram this
    /// is a **no-op**: the builders intern through the same unique table, so
    /// there is nothing left to merge — the method asserts canonicity (in
    /// debug builds) and returns a clone.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::{BuildOptions, StateDd};
    /// use mdq_num::{radix::Dims, Complex};
    ///
    /// // (|00⟩ − |11⟩ + |21⟩)/√3 (Fig. 3): the |1⟩-successors of the two
    /// // upper branches are identical and shared at build time already, so
    /// // reduction changes nothing.
    /// let dims = Dims::new(vec![3, 2])?;
    /// let a = 1.0 / 3.0_f64.sqrt();
    /// let mut amps = vec![Complex::ZERO; 6];
    /// amps[0] = Complex::real(a);
    /// amps[3] = Complex::real(-a);
    /// amps[5] = Complex::real(a);
    /// let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default())?;
    /// assert_eq!(dd.reduce().node_count(), dd.node_count());
    ///
    /// // The unreduced Table-1 tree is where reduction does real work.
    /// let tree = StateDd::from_amplitudes(
    ///     &dims,
    ///     &amps,
    ///     BuildOptions::default().keep_zero_subtrees(true),
    /// )?;
    /// assert!(tree.reduce().node_count() < tree.node_count());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn reduce(&self) -> StateDd {
        if self.is_canonical() {
            debug_assert!(
                self.check_canonical(),
                "arena-built diagram lost canonicity"
            );
            return self.clone();
        }
        // Bottom-up re-intern of every node (children precede parents).
        let mut arena = DdArena::with_node_limit(self.tolerance(), self.arena().node_limit());
        let memo = self.reintern_into(&mut arena, |_| true);

        let (root_weight, root) = self.root();
        let root = match root {
            NodeRef::Terminal => NodeRef::Terminal,
            NodeRef::Node(id) => memo[id.index()].expect("root visited"),
        };
        StateDd::from_parts(self.dims().clone(), arena, root, root_weight, true)
    }

    /// Verifies the sharing invariant structurally: re-interning every node
    /// into a fresh arena merges nothing, i.e. no two stored nodes are
    /// structurally identical within the tolerance and no all-zero nodes
    /// exist. (Reachability is *not* checked — [`StateDd::apply_mut`]
    /// deliberately leaves superseded nodes in the arena until the next
    /// compaction, and those are signature-distinct.) Used by debug
    /// assertions and tests.
    #[must_use]
    pub fn check_canonical(&self) -> bool {
        let mut probe = DdArena::new(self.tolerance());
        let _ = self.reintern_into(&mut probe, |_| true);
        probe.len() == self.nodes().len()
    }

    /// Ids of nodes whose nonzero edges all point to one shared internal
    /// child, with at least `min_edges` nonzero edges.
    ///
    /// With `min_edges = 2` this is exactly the paper's tensor-product
    /// pattern: the node's qudit factorizes from the rest of the state, so
    /// operations synthesized inside the shared child do not need this qudit
    /// as a control. (`min_edges = 1` additionally elides controls below
    /// single-successor nodes — correct, but not done by the paper; see the
    /// ablation benchmark.)
    ///
    /// Arena-built diagrams are shared by construction, so the pattern fires
    /// without an explicit reduction step; on Table-1 trees every child is a
    /// distinct node and only `min_edges = 1` patterns appear.
    #[must_use]
    pub fn product_nodes(&self, min_edges: usize) -> Vec<NodeId> {
        let tol = self.tolerance().value();
        self.nodes()
            .iter()
            .enumerate()
            .filter_map(|(idx, node)| {
                node.common_child(tol)
                    .and_then(|(_, count)| (count >= min_edges).then(|| NodeId::new(idx)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{BuildOptions, StateDd};
    use mdq_num::radix::Dims;
    use mdq_num::Complex;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn build(d: &Dims, amps: &[Complex]) -> StateDd {
        StateDd::from_amplitudes(d, amps, BuildOptions::default()).unwrap()
    }

    #[test]
    fn build_shares_identical_subtrees_reduce_is_noop() {
        // Fig. 3 state: the two identical |1⟩-successor nodes are merged at
        // build time, so the diagram starts at 3 nodes and reduce keeps it.
        let d = dims(&[3, 2]);
        let a = 1.0 / 3.0_f64.sqrt();
        let mut amps = vec![Complex::ZERO; 6];
        amps[d.index_of(&[0, 0])] = Complex::real(a);
        amps[d.index_of(&[1, 1])] = Complex::real(-a);
        amps[d.index_of(&[2, 1])] = Complex::real(a);
        let dd = build(&d, &amps);
        assert_eq!(dd.node_count(), 3);
        assert!(dd.check_canonical());
        let reduced = dd.reduce();
        assert_eq!(reduced.node_count(), 3);
        for (x, y) in dd.to_amplitudes().iter().zip(reduced.to_amplitudes()) {
            assert!(x.approx_eq(y, 1e-12));
        }
    }

    #[test]
    fn reduce_shares_identical_subtrees_of_trees() {
        // The same state built as an unreduced tree: reduce does real work.
        let d = dims(&[3, 2]);
        let a = 1.0 / 3.0_f64.sqrt();
        let mut amps = vec![Complex::ZERO; 6];
        amps[d.index_of(&[0, 0])] = Complex::real(a);
        amps[d.index_of(&[1, 1])] = Complex::real(-a);
        amps[d.index_of(&[2, 1])] = Complex::real(a);
        let tree =
            StateDd::from_amplitudes(&d, &amps, BuildOptions::default().keep_zero_subtrees(true))
                .unwrap();
        assert_eq!(tree.node_count(), d.full_tree_node_count());
        assert!(!tree.is_canonical());
        let reduced = tree.reduce();
        assert_eq!(reduced.node_count(), 3);
        assert!(reduced.is_canonical());
        for (x, y) in tree.to_amplitudes().iter().zip(reduced.to_amplitudes()) {
            assert!(x.approx_eq(y, 1e-12));
        }
    }

    #[test]
    fn reduce_is_idempotent() {
        let d = dims(&[2, 3, 2]);
        let n = d.space_size();
        let amps: Vec<Complex> = (0..n)
            .map(|i| Complex::real(((i % 3) + 1) as f64))
            .collect();
        let once = build(&d, &amps).reduce();
        let twice = once.reduce();
        assert_eq!(once.node_count(), twice.node_count());
        assert_eq!(once.edge_count(), twice.edge_count());
    }

    #[test]
    fn uniform_state_builds_as_one_node_per_level() {
        let d = dims(&[3, 4, 2]);
        let n = d.space_size();
        let a = Complex::real(1.0 / (n as f64).sqrt());
        // A uniform product state has exactly one node per level — already
        // at build time, no reduction pass needed.
        let dd = build(&d, &vec![a; n]);
        assert_eq!(dd.node_count(), d.len());
        assert_eq!(dd.reduce().node_count(), d.len());
    }

    #[test]
    fn reduce_on_full_tree_drops_zero_subtrees() {
        let d = dims(&[3, 6, 2]);
        let mut amps = vec![Complex::ZERO; d.space_size()];
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        amps[d.index_of(&[0, 0, 0])] = a;
        amps[d.index_of(&[1, 1, 1])] = a;
        let full =
            StateDd::from_amplitudes(&d, &amps, BuildOptions::default().keep_zero_subtrees(true))
                .unwrap();
        let reduced = full.reduce();
        assert_eq!(reduced.node_count(), 5);
        assert!((reduced.fidelity(&full) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_nodes_detected_on_uniform_state() {
        let d = dims(&[3, 4, 2]);
        let n = d.space_size();
        let a = Complex::real(1.0 / (n as f64).sqrt());
        let dd = build(&d, &vec![a; n]);
        // Levels 0 and 1 are product nodes (all edges to the shared child);
        // level 2 points at the terminal and is excluded. No reduce() call
        // needed: sharing exists by construction.
        let products = dd.product_nodes(2);
        assert_eq!(products.len(), 2);
        let levels: Vec<usize> = products.iter().map(|id| dd.node(*id).level()).collect();
        assert!(levels.contains(&0) && levels.contains(&1));
    }

    #[test]
    fn ghz_has_no_product_nodes() {
        let d = dims(&[3, 3]);
        let a = Complex::real(1.0 / 3.0_f64.sqrt());
        let mut amps = vec![Complex::ZERO; 9];
        for k in 0..3 {
            amps[d.index_of(&[k, k])] = a;
        }
        let dd = build(&d, &amps);
        assert!(dd.product_nodes(2).is_empty());
    }

    #[test]
    fn single_successor_products_found_with_min_edges_one() {
        // |1⟩|+⟩ on [3,2]: the root has a single nonzero edge.
        let d = dims(&[3, 2]);
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        let mut amps = vec![Complex::ZERO; 6];
        amps[d.index_of(&[1, 0])] = a;
        amps[d.index_of(&[1, 1])] = a;
        let dd = build(&d, &amps);
        assert_eq!(dd.product_nodes(2).len(), 0);
        assert_eq!(dd.product_nodes(1).len(), 1);
    }

    #[test]
    fn build_merges_subtrees_within_tolerance() {
        let d = dims(&[2, 2]);
        let h = 0.5;
        // Two branches whose children differ by 1e-12 — inside tolerance, so
        // the unique table merges them at intern time.
        let amps = [
            Complex::real(h),
            Complex::real(h),
            Complex::real(h),
            Complex::real(h + 1e-12),
        ];
        let dd = build(&d, &amps);
        assert_eq!(dd.node_count(), 2);
        assert_eq!(dd.reduce().node_count(), 2);
    }

    #[test]
    fn check_canonical_detects_unshared_trees() {
        let d = dims(&[2, 2]);
        let a = Complex::real(0.5);
        let tree = StateDd::from_amplitudes(
            &d,
            &[a, a, a, a],
            BuildOptions::default().keep_zero_subtrees(true),
        )
        .unwrap();
        assert!(!tree.check_canonical());
        assert!(tree.reduce().check_canonical());
    }
}
