//! Construction of decision diagrams from dense amplitude vectors and
//! sparse support lists.
//!
//! The recursive splitting procedure of the paper's §4.1: the vector is cut
//! into `d` equal parts at the most significant qudit, each part becomes a
//! successor, and normalization factors propagate from the terminal edges
//! upwards so that every node's out-edge weights have squared magnitudes
//! summing to one.
//!
//! Both builders intern every completed subtree through the shared
//! [`DdArena`], so identical subtrees (up to the tolerance) are shared the
//! moment they are built — the resulting diagrams are canonical and
//! [`StateDd::reduce`] is a structural no-op on them. The unreduced Table-1
//! tree (every position a distinct node, zero subtrees materialized) stays
//! available behind [`BuildOptions::keep_zero_subtrees`], which bypasses
//! the unique table.

use std::fmt;

use mdq_num::radix::Dims;
use mdq_num::{Complex, Tolerance};

use crate::arena::{ArenaOverflow, DdArena};
use crate::node::{Edge, NodeRef};
use crate::StateDd;

/// Errors produced by [`StateDd::from_amplitudes`] and
/// [`StateDd::from_sparse`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The amplitude vector length does not match the register size.
    WrongLength {
        /// Expected `dims.space_size()`.
        expected: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// The amplitude vector has (numerically) zero norm.
    ZeroNorm,
    /// An amplitude was not finite.
    NotFinite {
        /// Index of the offending amplitude.
        index: usize,
    },
    /// A sparse entry had the wrong number of digits.
    WrongDigitCount {
        /// Expected `dims.len()`.
        expected: usize,
        /// Actual digit count supplied.
        got: usize,
    },
    /// A sparse entry had a digit exceeding its qudit's dimension.
    DigitOutOfRange {
        /// Qudit position of the offending digit.
        position: usize,
        /// The digit value.
        digit: usize,
        /// The qudit's dimension.
        dim: usize,
    },
    /// The node arena reached its capacity (the configured
    /// [`BuildOptions::node_limit`] or the `u32` index space).
    ArenaOverflow {
        /// The node limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::WrongLength { expected, got } => {
                write!(f, "amplitude vector has length {got}, expected {expected}")
            }
            BuildError::ZeroNorm => write!(f, "amplitude vector has zero norm"),
            BuildError::NotFinite { index } => {
                write!(f, "amplitude at index {index} is not finite")
            }
            BuildError::WrongDigitCount { expected, got } => {
                write!(f, "sparse entry has {got} digits, expected {expected}")
            }
            BuildError::DigitOutOfRange {
                position,
                digit,
                dim,
            } => write!(
                f,
                "sparse entry digit {digit} at position {position} exceeds dimension {dim}"
            ),
            BuildError::ArenaOverflow { limit } => {
                write!(f, "decision-diagram arena is full ({limit} nodes)")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ArenaOverflow> for BuildError {
    fn from(e: ArenaOverflow) -> Self {
        BuildError::ArenaOverflow { limit: e.limit }
    }
}

/// Options controlling diagram construction.
///
/// # Examples
///
/// ```
/// use mdq_dd::BuildOptions;
/// let opts = BuildOptions::default().keep_zero_subtrees(true);
/// assert!(opts.keeps_zero_subtrees());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    keep_zero_subtrees: bool,
    tolerance: Tolerance,
    node_limit: Option<usize>,
    build_threads: usize,
    table_shards: Option<usize>,
}

impl BuildOptions {
    /// Default options: zero subtrees pruned, default tolerance, no node
    /// cap beyond the `u32` index space, single-threaded build.
    #[must_use]
    pub fn new() -> Self {
        Self {
            keep_zero_subtrees: false,
            tolerance: Tolerance::default(),
            node_limit: None,
            build_threads: 1,
            table_shards: None,
        }
    }

    /// Whether all-zero branches materialize full subtrees of zero-weight
    /// edges instead of a single zero edge to the terminal.
    ///
    /// Keeping them reproduces the paper's unreduced tree, whose edge count
    /// is the "Nodes" column for exact synthesis in Table 1 (e.g. 58 for the
    /// `[3,6,2]` register regardless of the state). The tree path allocates
    /// every node unshared — hash-consing is reserved for the default path.
    #[must_use]
    pub fn keep_zero_subtrees(mut self, keep: bool) -> Self {
        self.keep_zero_subtrees = keep;
        self
    }

    /// Returns whether zero subtrees are kept.
    #[must_use]
    pub fn keeps_zero_subtrees(&self) -> bool {
        self.keep_zero_subtrees
    }

    /// Sets the tolerance used for zero tests during construction.
    #[must_use]
    pub fn tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Returns the configured tolerance.
    #[must_use]
    pub fn tolerance_value(&self) -> Tolerance {
        self.tolerance
    }

    /// Caps the arena at `limit` nodes; builds exceeding it fail with
    /// [`BuildError::ArenaOverflow`] instead of exhausting memory, and the
    /// limit is inherited by every diagram derived from the built one.
    #[must_use]
    pub fn node_limit(mut self, limit: usize) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Returns the configured node cap, if any.
    #[must_use]
    pub fn node_limit_value(&self) -> Option<usize> {
        self.node_limit
    }

    /// Number of worker threads the dense/sparse builders may fan out over.
    ///
    /// `1` (the default) is exactly the sequential code path. More threads
    /// split the amplitude range at the top levels into independent subtree
    /// tasks, build each in a thread-local scratch arena, and re-intern the
    /// results deterministically — `to_amplitudes` of the result is
    /// bit-identical to the sequential build (see the [`par`](crate::par)
    /// module). The value is honoured literally; clamping to the machine
    /// (and to job size) is the caller's policy — the engine clamps at
    /// grant time.
    #[must_use]
    pub fn build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads.max(1);
        self
    }

    /// Returns the configured build thread count (at least 1).
    #[must_use]
    pub fn build_threads_value(&self) -> usize {
        self.build_threads.max(1)
    }

    /// Overrides the number of fingerprint-selected shards the arena's
    /// unique/weight tables are fanned out over. By default the shard count
    /// is derived from [`build_threads`](Self::build_threads): 1 for a
    /// sequential build (bit-for-bit today's unsharded behaviour), the
    /// thread count rounded up to a power of two (capped at 16) otherwise.
    #[must_use]
    pub fn table_shards(mut self, shards: usize) -> Self {
        self.table_shards = Some(shards.max(1));
        self
    }

    /// Returns the explicit table shard override, if any.
    #[must_use]
    pub fn table_shards_value(&self) -> Option<usize> {
        self.table_shards
    }

    /// The shard count a build with these options actually uses.
    pub(crate) fn effective_table_shards(&self) -> usize {
        self.table_shards.unwrap_or(if self.build_threads > 1 {
            self.build_threads.next_power_of_two().min(16)
        } else {
            1
        })
    }

    /// A fresh arena honouring the tolerance, node limit, and shard count.
    pub(crate) fn arena(&self) -> DdArena {
        DdArena::with_table_shards(
            self.tolerance,
            self.node_limit.unwrap_or(u32::MAX as usize),
            self.effective_table_shards(),
        )
    }
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self::new()
    }
}

pub(crate) struct Builder<'a> {
    pub(crate) dims: &'a Dims,
    pub(crate) opts: BuildOptions,
    pub(crate) arena: DdArena,
}

impl<'a> Builder<'a> {
    /// Normalizes and stores a node from raw successor edges, returning the
    /// upward edge (norm and pulled-up phase on the weight). The default
    /// path interns through the unique table; the `keep_zero_subtrees` tree
    /// path allocates every node unshared, materializing zero subtrees.
    pub(crate) fn finish_node(
        &mut self,
        level: usize,
        mut edges: Vec<Edge>,
    ) -> Result<Edge, ArenaOverflow> {
        if !self.opts.keep_zero_subtrees {
            return self.arena.intern_normalized(level, edges);
        }
        let tol = self.opts.tolerance.value();
        let norm_sqr: f64 = edges.iter().map(|e| e.weight.norm_sqr()).sum();
        let norm = norm_sqr.sqrt();
        if norm <= tol {
            // All-zero subvector: materialize the zero node (below the last
            // level its recursively built zero children are in `edges`).
            let zeroed = edges
                .into_iter()
                .map(|e| Edge::new(Complex::ZERO, e.target))
                .collect();
            let target = self.arena.alloc_unshared(level, zeroed)?;
            return Ok(Edge::new(Complex::ZERO, target));
        }
        for e in &mut edges {
            e.weight = e.weight / norm;
        }
        let phase = edges
            .iter()
            .find(|e| !e.is_zero(tol))
            .map_or(0.0, |e| e.weight.arg());
        let unphase = Complex::cis(-phase);
        for e in &mut edges {
            e.weight *= unphase;
            if e.is_zero(tol) {
                e.weight = Complex::ZERO;
            }
        }
        let target = self.arena.alloc_unshared(level, edges)?;
        Ok(Edge::new(Complex::from_polar(norm, phase), target))
    }

    /// Builds the subtree for `slice` rooted at `level`, returning the
    /// upward edge (normalization weight and target).
    pub(crate) fn build(&mut self, level: usize, slice: &[Complex]) -> Result<Edge, ArenaOverflow> {
        let d = self.dims.dim(level);
        let chunk = slice.len() / d;
        let last_level = level + 1 == self.dims.len();

        let mut edges = Vec::with_capacity(d);
        for k in 0..d {
            let part = &slice[k * chunk..(k + 1) * chunk];
            let edge = if last_level {
                Edge::new(part[0], NodeRef::Terminal)
            } else {
                self.build(level + 1, part)?
            };
            edges.push(edge);
        }
        self.finish_node(level, edges)
    }

    /// Builds the subtree for a sorted, deduplicated slice of
    /// `(flat index, amplitude)` entries, all inside the sub-space starting
    /// at `offset` with the given `strides`. Branches without entries become
    /// zero edges, which is what makes the construction linear in the
    /// support size instead of the space size.
    pub(crate) fn build_sparse(
        &mut self,
        level: usize,
        offset: usize,
        entries: &[(usize, Complex)],
        strides: &[usize],
    ) -> Result<Edge, ArenaOverflow> {
        let d = self.dims.dim(level);
        let stride = strides[level];
        let last_level = level + 1 == self.dims.len();

        let mut edges = Vec::with_capacity(d);
        let mut rest = entries;
        for k in 0..d {
            let upper = offset + (k + 1) * stride;
            let split = rest.partition_point(|&(idx, _)| idx < upper);
            let (part, tail) = rest.split_at(split);
            rest = tail;
            let edge = if part.is_empty() {
                Edge::ZERO
            } else if last_level {
                Edge::new(part[0].1, NodeRef::Terminal)
            } else {
                self.build_sparse(level + 1, offset + k * stride, part, strides)?
            };
            edges.push(edge);
        }
        self.finish_node(level, edges)
    }
}

/// The shared front half of the sparse builders: validates every entry
/// (digit count, digit range, finiteness, in entry order), flattens to
/// sorted `(flat index, amplitude)` pairs with duplicates summed and
/// tolerance-zero amplitudes dropped, and rejects an all-zero total norm —
/// exactly the checks [`StateDd::from_sparse`] reports as [`BuildError`]s.
fn flatten_sparse(
    dims: &Dims,
    entries: &[(Vec<usize>, Complex)],
    tol: f64,
) -> Result<Vec<(usize, Complex)>, BuildError> {
    let mut flat: Vec<(usize, Complex)> = Vec::with_capacity(entries.len());
    for (i, (digits, amp)) in entries.iter().enumerate() {
        if digits.len() != dims.len() {
            return Err(BuildError::WrongDigitCount {
                expected: dims.len(),
                got: digits.len(),
            });
        }
        for (position, (&digit, &dim)) in digits.iter().zip(dims.as_slice()).enumerate() {
            if digit >= dim {
                return Err(BuildError::DigitOutOfRange {
                    position,
                    digit,
                    dim,
                });
            }
        }
        if !amp.is_finite() {
            return Err(BuildError::NotFinite { index: i });
        }
        flat.push((dims.index_of(digits), *amp));
    }
    flat.sort_by_key(|&(idx, _)| idx);
    // Sum duplicates, drop zeros.
    let mut dedup: Vec<(usize, Complex)> = Vec::with_capacity(flat.len());
    for (idx, amp) in flat {
        match dedup.last_mut() {
            Some((last, acc)) if *last == idx => *acc += amp,
            _ => dedup.push((idx, amp)),
        }
    }
    dedup.retain(|(_, a)| !a.is_zero(tol));
    let norm_sqr: f64 = dedup.iter().map(|(_, a)| a.norm_sqr()).sum();
    if norm_sqr.sqrt() <= tol {
        return Err(BuildError::ZeroNorm);
    }
    Ok(dedup)
}

impl StateDd {
    /// Checks a dense amplitude vector against `dims` exactly as
    /// [`StateDd::from_amplitudes`] would, without building anything: the
    /// first failing check wins, in the same order (length, finiteness,
    /// norm).
    ///
    /// Per-worker recycling loops call this *before* handing their scratch
    /// arena to [`StateDd::from_amplitudes_in`], so a malformed request
    /// cannot cost them a warmed arena.
    ///
    /// # Errors
    ///
    /// Returns the [`BuildError`] the corresponding build would surface.
    pub fn validate_amplitudes(
        dims: &Dims,
        amplitudes: &[Complex],
        opts: BuildOptions,
    ) -> Result<(), BuildError> {
        if amplitudes.len() != dims.space_size() {
            return Err(BuildError::WrongLength {
                expected: dims.space_size(),
                got: amplitudes.len(),
            });
        }
        if let Some(index) = amplitudes.iter().position(|a| !a.is_finite()) {
            return Err(BuildError::NotFinite { index });
        }
        let norm = mdq_num::norm(amplitudes);
        if norm <= opts.tolerance.value() {
            return Err(BuildError::ZeroNorm);
        }
        Ok(())
    }

    /// Checks a sparse entry list exactly as [`StateDd::from_sparse`] would
    /// (digit counts, digit ranges, finiteness, zero total norm after
    /// duplicate summing), without building anything — the sparse
    /// counterpart of [`StateDd::validate_amplitudes`].
    ///
    /// # Errors
    ///
    /// Returns the [`BuildError`] the corresponding build would surface.
    pub fn validate_sparse(
        dims: &Dims,
        entries: &[(Vec<usize>, Complex)],
        opts: BuildOptions,
    ) -> Result<(), BuildError> {
        flatten_sparse(dims, entries, opts.tolerance.value()).map(|_| ())
    }

    /// The canonical `(flat index, amplitude)` support [`StateDd::from_sparse`]
    /// actually builds from: validated, sorted by index, duplicates summed,
    /// tolerance-zero amplitudes dropped. Exposed so content-addressing
    /// layers (the engine's request cache) derive their identity from the
    /// *same* flattening the builder uses — any future change to the
    /// builder's dedup rules automatically carries over.
    ///
    /// # Errors
    ///
    /// Returns the [`BuildError`] the corresponding build would surface.
    pub fn canonical_sparse_support(
        dims: &Dims,
        entries: &[(Vec<usize>, Complex)],
        tolerance: Tolerance,
    ) -> Result<Vec<(usize, Complex)>, BuildError> {
        flatten_sparse(dims, entries, tolerance.value())
    }

    /// Builds a decision diagram from a dense amplitude vector.
    ///
    /// The vector is indexed in mixed-radix order with the *first* dimension
    /// of `dims` most significant (see [`Dims::index_of`]). The input does
    /// not have to be normalized; the resulting diagram always represents
    /// the normalized state (the overall scale is discarded, the global
    /// phase is kept on the root edge). Unless
    /// [`keep_zero_subtrees`](BuildOptions::keep_zero_subtrees) is set, the
    /// result is canonical: identical subtrees are shared at build time and
    /// [`StateDd::reduce`] is a structural no-op.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the length does not match
    /// `dims.space_size()`, an amplitude is not finite, the norm is zero,
    /// or the configured node limit is exceeded.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::{BuildOptions, StateDd};
    /// use mdq_num::{radix::Dims, Complex};
    ///
    /// let dims = Dims::new(vec![2, 2])?;
    /// let h = Complex::real(0.5);
    /// let dd = StateDd::from_amplitudes(&dims, &[h, h, h, h], BuildOptions::default())?;
    /// assert!(dd.amplitude(&[1, 0]).approx_eq(h, 1e-12));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_amplitudes(
        dims: &Dims,
        amplitudes: &[Complex],
        opts: BuildOptions,
    ) -> Result<Self, BuildError> {
        Self::from_amplitudes_in(dims, amplitudes, opts, opts.arena())
    }

    /// [`StateDd::from_amplitudes`] building into a caller-provided arena —
    /// the recycling entry point of the batch-preparation engine, where one
    /// worker reuses a single arena (and its grown hash-map capacity) across
    /// many jobs.
    ///
    /// The arena is cleared on entry (capacity retained) and reconfigured to
    /// the options' tolerance; the options' node limit, when set, replaces
    /// the arena's. The built diagram takes ownership of the arena — reclaim
    /// it from the result via [`StateDd::into_arena`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] as [`StateDd::from_amplitudes`] does; on error
    /// the arena is dropped. Callers that must not lose a warmed arena to a
    /// malformed input (the per-worker recycling loop) can screen with
    /// [`StateDd::validate_amplitudes`] *before* handing the arena over —
    /// after that only arena exhaustion can fail.
    pub fn from_amplitudes_in(
        dims: &Dims,
        amplitudes: &[Complex],
        opts: BuildOptions,
        arena: DdArena,
    ) -> Result<Self, BuildError> {
        let mut pool = crate::par::ScratchPool::new();
        Self::from_amplitudes_in_pooled(dims, amplitudes, opts, arena, &mut pool)
    }

    /// [`StateDd::from_amplitudes_in`] with a caller-provided
    /// [`ScratchPool`](crate::par::ScratchPool) backing the thread-local
    /// arenas of a multi-threaded build
    /// ([`BuildOptions::build_threads`] > 1), so a long-lived worker reuses
    /// its per-task scratch arenas across jobs. With one build thread the
    /// pool is untouched and this is exactly [`StateDd::from_amplitudes_in`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] as [`StateDd::from_amplitudes_in`] does.
    pub fn from_amplitudes_in_pooled(
        dims: &Dims,
        amplitudes: &[Complex],
        opts: BuildOptions,
        mut arena: DdArena,
        pool: &mut crate::par::ScratchPool,
    ) -> Result<Self, BuildError> {
        Self::validate_amplitudes(dims, amplitudes, opts)?;

        arena.reset_for_tables(
            opts.tolerance,
            opts.node_limit.unwrap_or_else(|| arena.node_limit()),
            opts.effective_table_shards(),
        );
        if opts.build_threads_value() > 1 {
            if let Some(plan) = crate::par::plan_split(dims, opts.build_threads_value()) {
                return crate::par::from_amplitudes_split(
                    dims, amplitudes, opts, arena, pool, plan,
                );
            }
        }
        let mut builder = Builder { dims, opts, arena };
        let root_edge = builder.build(0, amplitudes)?;
        debug_assert!(!root_edge.is_zero(opts.tolerance.value()));
        // The up-weight magnitude is the input norm; keep only the phase so
        // the diagram represents the normalized state.
        let root_weight = Complex::cis(root_edge.weight.arg());
        Ok(StateDd::from_parts(
            dims.clone(),
            builder.arena,
            root_edge.target,
            root_weight,
            !opts.keep_zero_subtrees,
        ))
    }

    /// Builds a decision diagram from a *sparse* list of
    /// `(digits, amplitude)` entries, in time and memory linear in the
    /// support size — independent of the Hilbert-space size.
    ///
    /// This makes structured states practical far beyond what a dense
    /// vector permits: a GHZ state over 20 qudits (a space of billions of
    /// amplitudes) builds in microseconds because its diagram has one node
    /// per level. The peak node count — the arena never holds anything but
    /// the interned diagram — is polynomial in the number of nonzero
    /// entries. Amplitudes of repeated basis states are summed; entries
    /// that cancel to zero are dropped. The state is normalized as in
    /// [`StateDd::from_amplitudes`]. Zero branches are always pruned
    /// (`keep_zero_subtrees` is ignored — the unreduced tree is
    /// exponentially large by definition), so sparse-built diagrams are
    /// always canonical.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if an entry has the wrong digit count, a digit
    /// out of range, a non-finite amplitude, the total norm is zero, or the
    /// configured node limit is exceeded.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::{BuildOptions, StateDd};
    /// use mdq_num::{radix::Dims, Complex};
    ///
    /// // GHZ over ten qutrits: 59049 amplitudes, but only 3 entries.
    /// let dims = Dims::uniform(10, 3)?;
    /// let a = Complex::real(1.0 / 3.0_f64.sqrt());
    /// let entries: Vec<(Vec<usize>, Complex)> =
    ///     (0..3).map(|l| (vec![l; 10], a)).collect();
    /// let dd = StateDd::from_sparse(&dims, &entries, BuildOptions::default())?;
    /// assert_eq!(dd.node_count(), 10 + 2 * 9); // 3 branches sharing nothing below the root
    /// assert!(dd.amplitude(&vec![2; 10]).approx_eq(a, 1e-12));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_sparse(
        dims: &Dims,
        entries: &[(Vec<usize>, Complex)],
        opts: BuildOptions,
    ) -> Result<Self, BuildError> {
        Self::from_sparse_in(dims, entries, opts, opts.arena())
    }

    /// [`StateDd::from_sparse`] building into a caller-provided arena; see
    /// [`StateDd::from_amplitudes_in`] for the recycling contract.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] as [`StateDd::from_sparse`] does; on error the
    /// arena is dropped (screen with [`StateDd::validate_sparse`] first to
    /// keep a warmed arena out of malformed jobs).
    pub fn from_sparse_in(
        dims: &Dims,
        entries: &[(Vec<usize>, Complex)],
        opts: BuildOptions,
        arena: DdArena,
    ) -> Result<Self, BuildError> {
        let mut pool = crate::par::ScratchPool::new();
        Self::from_sparse_in_pooled(dims, entries, opts, arena, &mut pool)
    }

    /// [`StateDd::from_sparse_in`] with a caller-provided
    /// [`ScratchPool`](crate::par::ScratchPool); see
    /// [`StateDd::from_amplitudes_in_pooled`] for the contract.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] as [`StateDd::from_sparse_in`] does.
    pub fn from_sparse_in_pooled(
        dims: &Dims,
        entries: &[(Vec<usize>, Complex)],
        opts: BuildOptions,
        mut arena: DdArena,
        pool: &mut crate::par::ScratchPool,
    ) -> Result<Self, BuildError> {
        let dedup = flatten_sparse(dims, entries, opts.tolerance.value())?;

        let opts = opts.keep_zero_subtrees(false);
        arena.reset_for_tables(
            opts.tolerance,
            opts.node_limit.unwrap_or_else(|| arena.node_limit()),
            opts.effective_table_shards(),
        );
        if opts.build_threads_value() > 1 {
            if let Some(plan) = crate::par::plan_split(dims, opts.build_threads_value()) {
                return crate::par::from_sparse_split(dims, &dedup, opts, arena, pool, plan);
            }
        }
        let mut builder = Builder { dims, opts, arena };
        let strides = dims.strides();
        let root_edge = builder.build_sparse(0, 0, &dedup, &strides)?;
        let root_weight = Complex::cis(root_edge.weight.arg());
        Ok(StateDd::from_parts(
            dims.clone(),
            builder.arena,
            root_edge.target,
            root_weight,
            true,
        ))
    }

    /// Rebuilds the diagram with all-zero branches collapsed to single zero
    /// edges pointing at the terminal, interning every surviving node — the
    /// result is canonical.
    ///
    /// Since the arena refactor, interning subsumes zero-branch pruning, so
    /// this is exactly [`StateDd::reduce`]: on a diagram built with
    /// [`keep_zero_subtrees`](BuildOptions::keep_zero_subtrees) it realizes
    /// the transition from the paper's structural tree to the shared diagram
    /// the synthesizer actually traverses; on an arena-built diagram it is
    /// equivalent to a clone.
    #[must_use]
    pub fn prune_zero_subtrees(&self) -> StateDd {
        self.reduce()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn ghz_362() -> (Dims, Vec<Complex>) {
        // (|000⟩ + |111⟩)/√2 on dims [3,6,2] (min dim 2 ⇒ two components).
        let d = dims(&[3, 6, 2]);
        let mut amps = vec![Complex::ZERO; d.space_size()];
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        amps[d.index_of(&[0, 0, 0])] = a;
        amps[d.index_of(&[1, 1, 1])] = a;
        (d, amps)
    }

    #[test]
    fn rejects_wrong_length() {
        let d = dims(&[2, 2]);
        let err = StateDd::from_amplitudes(&d, &[Complex::ONE], BuildOptions::default());
        assert_eq!(
            err.unwrap_err(),
            BuildError::WrongLength {
                expected: 4,
                got: 1
            }
        );
    }

    #[test]
    fn rejects_zero_norm() {
        let d = dims(&[2]);
        let err = StateDd::from_amplitudes(&d, &[Complex::ZERO; 2], BuildOptions::default());
        assert_eq!(err.unwrap_err(), BuildError::ZeroNorm);
    }

    #[test]
    fn rejects_non_finite() {
        let d = dims(&[2]);
        let amps = [Complex::new(f64::NAN, 0.0), Complex::ONE];
        let err = StateDd::from_amplitudes(&d, &amps, BuildOptions::default());
        assert_eq!(err.unwrap_err(), BuildError::NotFinite { index: 0 });
    }

    #[test]
    fn node_limit_surfaces_as_build_error() {
        let d = dims(&[2, 2, 2]);
        let amps: Vec<Complex> = (0..8).map(|i| Complex::real(1.0 + i as f64)).collect();
        let err = StateDd::from_amplitudes(&d, &amps, BuildOptions::default().node_limit(2));
        assert_eq!(err.unwrap_err(), BuildError::ArenaOverflow { limit: 2 });
        let entries: Vec<(Vec<usize>, Complex)> = (0..8)
            .map(|i| (d.digits_of(i), Complex::real(1.0 + i as f64)))
            .collect();
        let err = StateDd::from_sparse(&d, &entries, BuildOptions::default().node_limit(2));
        assert_eq!(err.unwrap_err(), BuildError::ArenaOverflow { limit: 2 });
    }

    #[test]
    fn node_limit_is_inherited_by_the_built_diagram() {
        let d = dims(&[2]);
        let dd = StateDd::from_amplitudes(
            &d,
            &[Complex::ONE, Complex::ZERO],
            BuildOptions::default().node_limit(17),
        )
        .unwrap();
        assert_eq!(dd.arena().node_limit(), 17);
    }

    #[test]
    fn unnormalized_input_is_normalized() {
        let d = dims(&[2]);
        let amps = [Complex::real(3.0), Complex::real(4.0)];
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        assert!(dd.amplitude(&[0]).approx_eq(Complex::real(0.6), 1e-12));
        assert!(dd.amplitude(&[1]).approx_eq(Complex::real(0.8), 1e-12));
    }

    #[test]
    fn keep_zero_subtrees_builds_full_tree() {
        let (d, amps) = ghz_362();
        let opts = BuildOptions::default().keep_zero_subtrees(true);
        let dd = StateDd::from_amplitudes(&d, &amps, opts).unwrap();
        // Table 1: the unreduced tree for [3,6,2] has 58 edges.
        assert_eq!(dd.edge_count(), 58);
        assert_eq!(dd.node_count(), d.full_tree_node_count());
        assert!(!dd.is_canonical());
    }

    #[test]
    fn pruned_build_skips_zero_branches() {
        let (d, amps) = ghz_362();
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        // Table 1: the approximated GHZ diagram for [3,6,2] has 20 edges.
        assert_eq!(dd.edge_count(), 20);
        // root + two level-1 nodes + two level-2 nodes
        assert_eq!(dd.node_count(), 5);
        assert!(dd.is_canonical());
    }

    #[test]
    fn prune_zero_subtrees_matches_direct_pruned_build() {
        let (d, amps) = ghz_362();
        let full =
            StateDd::from_amplitudes(&d, &amps, BuildOptions::default().keep_zero_subtrees(true))
                .unwrap();
        let pruned = full.prune_zero_subtrees();
        assert_eq!(pruned.edge_count(), 20);
        assert_eq!(pruned.node_count(), 5);
        assert!(pruned.is_canonical());
        for (a, b) in full.to_amplitudes().iter().zip(pruned.to_amplitudes()) {
            assert!(a.approx_eq(b, 1e-12));
        }
    }

    #[test]
    fn node_weights_are_normalized() {
        let (d, amps) = ghz_362();
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        for node in dd.nodes() {
            let s: f64 = node.edges().iter().map(|e| e.weight.norm_sqr()).sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_canonicalization_shares_children_at_build_time() {
        // (|0⟩ ⊗ |+⟩ + |1⟩ ⊗ e^{iφ}|+⟩)/√2: both children equal up to phase.
        let d = dims(&[2, 2]);
        let phi = 1.234;
        let p = Complex::cis(phi);
        let h = Complex::real(0.5);
        let amps = [h, h, h * p, h * p];
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        // After phase pulling the two level-1 subtrees are identical, so the
        // hash-consing build interns them as one shared node.
        assert_eq!(dd.node_count(), 2);
        let root = dd.node(dd.root().1.id().unwrap());
        assert_eq!(root.edges()[0].target, root.edges()[1].target);
        // Reduction has nothing left to do.
        assert_eq!(dd.reduce().node_count(), 2);
    }

    #[test]
    fn global_phase_is_kept_on_root_edge() {
        let d = dims(&[2]);
        let g = Complex::cis(0.7);
        let inv = 1.0 / 2.0_f64.sqrt();
        let amps = [g * Complex::real(inv), g * Complex::real(inv)];
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        assert!(dd.root().0.approx_eq(g, 1e-12));
        for (a, b) in amps.iter().zip(dd.to_amplitudes()) {
            assert!(a.approx_eq(b, 1e-12));
        }
    }

    #[test]
    fn sparse_build_matches_dense_build() {
        let d = dims(&[3, 6, 2]);
        // W-like sparse state with mixed phases.
        let entries: Vec<(Vec<usize>, Complex)> = vec![
            (vec![0, 0, 1], Complex::real(0.5)),
            (vec![0, 3, 0], Complex::new(0.0, -0.5)),
            (vec![2, 0, 0], Complex::from_polar(0.5, 1.0)),
            (vec![1, 5, 1], Complex::real(-0.5)),
        ];
        let sparse = StateDd::from_sparse(&d, &entries, BuildOptions::default()).unwrap();
        let mut dense = vec![Complex::ZERO; d.space_size()];
        for (digits, amp) in &entries {
            dense[d.index_of(digits)] = *amp;
        }
        let dense = StateDd::from_amplitudes(&d, &dense, BuildOptions::default()).unwrap();
        assert_eq!(sparse.node_count(), dense.node_count());
        assert_eq!(sparse.edge_count(), dense.edge_count());
        assert!((sparse.fidelity(&dense) - 1.0).abs() < 1e-12);
        for (a, b) in sparse.to_amplitudes().iter().zip(dense.to_amplitudes()) {
            assert!(a.approx_eq(b, 1e-12));
        }
    }

    #[test]
    fn sparse_build_sums_duplicates_and_drops_cancellations() {
        let d = dims(&[2, 2]);
        let entries = vec![
            (vec![0, 0], Complex::real(0.5)),
            (vec![0, 0], Complex::real(0.5)),
            (vec![1, 1], Complex::real(0.7)),
            (vec![1, 1], Complex::real(-0.7)),
            (vec![0, 1], Complex::real(1.0)),
        ];
        let dd = StateDd::from_sparse(&d, &entries, BuildOptions::default()).unwrap();
        // |00⟩ amplitude 1.0, |01⟩ amplitude 1.0, |11⟩ cancelled.
        assert!(dd.amplitude(&[1, 1]).is_zero(1e-12));
        let a = dd.amplitude(&[0, 0]);
        let b = dd.amplitude(&[0, 1]);
        assert!(a.approx_eq(b, 1e-12));
        assert!((a.norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_build_validates_entries() {
        let d = dims(&[2, 2]);
        assert_eq!(
            StateDd::from_sparse(&d, &[(vec![0], Complex::ONE)], BuildOptions::default())
                .unwrap_err(),
            BuildError::WrongDigitCount {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            StateDd::from_sparse(&d, &[(vec![0, 2], Complex::ONE)], BuildOptions::default())
                .unwrap_err(),
            BuildError::DigitOutOfRange {
                position: 1,
                digit: 2,
                dim: 2
            }
        );
        assert_eq!(
            StateDd::from_sparse(&d, &[], BuildOptions::default()).unwrap_err(),
            BuildError::ZeroNorm
        );
        assert_eq!(
            StateDd::from_sparse(
                &d,
                &[(vec![0, 0], Complex::new(f64::INFINITY, 0.0))],
                BuildOptions::default()
            )
            .unwrap_err(),
            BuildError::NotFinite { index: 0 }
        );
    }

    #[test]
    fn sparse_build_scales_past_dense_limits() {
        // 20 mixed-dimensional qudits: the space has ~3.6e9 amplitudes, far
        // beyond a dense vector, but the GHZ diagram has 2 nodes per level
        // beyond the root.
        let pattern = [
            3usize, 4, 2, 5, 3, 2, 4, 3, 2, 3, 4, 2, 5, 3, 2, 3, 4, 2, 3, 5,
        ];
        let d = dims(&pattern);
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        let entries = vec![(vec![0; 20], a), (vec![1; 20], a)];
        let dd = StateDd::from_sparse(&d, &entries, BuildOptions::default()).unwrap();
        assert_eq!(dd.node_count(), 1 + 2 * 19);
        // Peak memory equals the final diagram: the arena never held any
        // other node, so the build is linear in the support size.
        assert_eq!(dd.arena().len(), 1 + 2 * 19);
        assert!(dd.amplitude(&[1; 20]).approx_eq(a, 1e-12));
        assert!(dd
            .amplitude(&{
                let mut v = vec![0; 20];
                v[7] = 1;
                v
            })
            .is_zero(1e-12));
    }

    #[test]
    fn build_in_recycled_arena_matches_fresh_build() {
        let (d, amps) = ghz_362();
        let fresh = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();

        // First job grows the arena, then the worker reclaims and reuses it.
        let first = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        let arena = first.into_arena();
        let again = StateDd::from_amplitudes_in(&d, &amps, BuildOptions::default(), arena).unwrap();
        assert_eq!(again.node_count(), fresh.node_count());
        assert_eq!(again.edge_count(), fresh.edge_count());
        for (a, b) in again.to_amplitudes().iter().zip(fresh.to_amplitudes()) {
            assert!(a.approx_eq(b, 1e-12));
        }

        // Sparse path through the same recycled arena.
        let entries = vec![
            (vec![0, 0, 0], Complex::real(1.0)),
            (vec![1, 1, 1], Complex::real(1.0)),
        ];
        let sparse_fresh = StateDd::from_sparse(&d, &entries, BuildOptions::default()).unwrap();
        let sparse_again =
            StateDd::from_sparse_in(&d, &entries, BuildOptions::default(), again.into_arena())
                .unwrap();
        assert_eq!(sparse_again.node_count(), sparse_fresh.node_count());
        assert!((sparse_again.fidelity(&sparse_fresh) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn build_in_respects_options_node_limit_over_arena_limit() {
        let d = dims(&[2, 2, 2]);
        let amps: Vec<Complex> = (0..8).map(|i| Complex::real(1.0 + i as f64)).collect();
        let arena = DdArena::with_node_limit(Tolerance::default(), 1_000);
        let err =
            StateDd::from_amplitudes_in(&d, &amps, BuildOptions::default().node_limit(2), arena);
        assert_eq!(err.unwrap_err(), BuildError::ArenaOverflow { limit: 2 });
        // Without an options limit the arena's own cap is kept.
        let arena = DdArena::with_node_limit(Tolerance::default(), 2);
        let err = StateDd::from_amplitudes_in(&d, &amps, BuildOptions::default(), arena);
        assert_eq!(err.unwrap_err(), BuildError::ArenaOverflow { limit: 2 });
    }

    #[test]
    fn single_qudit_diagram() {
        let d = dims(&[5]);
        let mut amps = vec![Complex::ZERO; 5];
        amps[3] = Complex::ONE;
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        assert_eq!(dd.node_count(), 1);
        assert_eq!(dd.edge_count(), 6);
        assert!(dd.amplitude(&[3]).approx_eq(Complex::ONE, 1e-12));
        assert!(dd.amplitude(&[0]).is_zero(1e-12));
    }
}
