//! Construction of decision diagrams from dense amplitude vectors.
//!
//! The recursive splitting procedure of the paper's §4.1: the vector is cut
//! into `d` equal parts at the most significant qudit, each part becomes a
//! successor, and normalization factors propagate from the terminal edges
//! upwards so that every node's out-edge weights have squared magnitudes
//! summing to one.

use std::fmt;

use mdq_num::radix::Dims;
use mdq_num::{Complex, Tolerance};

use crate::node::{Edge, Node, NodeId, NodeRef};
use crate::StateDd;

/// Errors produced by [`StateDd::from_amplitudes`] and
/// [`StateDd::from_sparse`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The amplitude vector length does not match the register size.
    WrongLength {
        /// Expected `dims.space_size()`.
        expected: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// The amplitude vector has (numerically) zero norm.
    ZeroNorm,
    /// An amplitude was not finite.
    NotFinite {
        /// Index of the offending amplitude.
        index: usize,
    },
    /// A sparse entry had the wrong number of digits.
    WrongDigitCount {
        /// Expected `dims.len()`.
        expected: usize,
        /// Actual digit count supplied.
        got: usize,
    },
    /// A sparse entry had a digit exceeding its qudit's dimension.
    DigitOutOfRange {
        /// Qudit position of the offending digit.
        position: usize,
        /// The digit value.
        digit: usize,
        /// The qudit's dimension.
        dim: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::WrongLength { expected, got } => {
                write!(f, "amplitude vector has length {got}, expected {expected}")
            }
            BuildError::ZeroNorm => write!(f, "amplitude vector has zero norm"),
            BuildError::NotFinite { index } => {
                write!(f, "amplitude at index {index} is not finite")
            }
            BuildError::WrongDigitCount { expected, got } => {
                write!(f, "sparse entry has {got} digits, expected {expected}")
            }
            BuildError::DigitOutOfRange {
                position,
                digit,
                dim,
            } => write!(
                f,
                "sparse entry digit {digit} at position {position} exceeds dimension {dim}"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Options controlling diagram construction.
///
/// # Examples
///
/// ```
/// use mdq_dd::BuildOptions;
/// let opts = BuildOptions::default().keep_zero_subtrees(true);
/// assert!(opts.keeps_zero_subtrees());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    keep_zero_subtrees: bool,
    tolerance: Tolerance,
}

impl BuildOptions {
    /// Default options: zero subtrees pruned, default tolerance.
    #[must_use]
    pub fn new() -> Self {
        Self {
            keep_zero_subtrees: false,
            tolerance: Tolerance::default(),
        }
    }

    /// Whether all-zero branches materialize full subtrees of zero-weight
    /// edges instead of a single zero edge to the terminal.
    ///
    /// Keeping them reproduces the paper's unreduced tree, whose edge count
    /// is the "Nodes" column for exact synthesis in Table 1 (e.g. 58 for the
    /// `[3,6,2]` register regardless of the state).
    #[must_use]
    pub fn keep_zero_subtrees(mut self, keep: bool) -> Self {
        self.keep_zero_subtrees = keep;
        self
    }

    /// Returns whether zero subtrees are kept.
    #[must_use]
    pub fn keeps_zero_subtrees(&self) -> bool {
        self.keep_zero_subtrees
    }

    /// Sets the tolerance used for zero tests during construction.
    #[must_use]
    pub fn tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Returns the configured tolerance.
    #[must_use]
    pub fn tolerance_value(&self) -> Tolerance {
        self.tolerance
    }
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self::new()
    }
}

struct Builder<'a> {
    dims: &'a Dims,
    opts: BuildOptions,
    nodes: Vec<Node>,
}

impl<'a> Builder<'a> {
    fn alloc(&mut self, node: Node) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Normalizes and allocates a node from raw successor edges, returning
    /// the upward edge (norm and pulled-up phase on the weight).
    fn finish_node(&mut self, level: usize, mut edges: Vec<Edge>) -> Edge {
        let tol = self.opts.tolerance.value();
        let norm_sqr: f64 = edges.iter().map(|e| e.weight.norm_sqr()).sum();
        let norm = norm_sqr.sqrt();
        if norm <= tol {
            // All-zero subvector.
            if self.opts.keep_zero_subtrees {
                // Materialize the zero node (and, below the last level, its
                // recursively built zero children are already in `edges`).
                let zeroed = edges
                    .into_iter()
                    .map(|e| Edge::new(Complex::ZERO, e.target))
                    .collect();
                let id = self.alloc(Node::new(level, zeroed));
                return Edge::new(Complex::ZERO, NodeRef::Node(id));
            }
            return Edge::ZERO;
        }

        // Normalize: divide by the real norm, then pull the phase of the
        // first nonzero weight out of the node so that structurally equal
        // subtrees (up to a global factor) become identical nodes.
        for e in &mut edges {
            e.weight = e.weight / norm;
        }
        let phase = edges
            .iter()
            .find(|e| !e.is_zero(tol))
            .map_or(0.0, |e| e.weight.arg());
        let unphase = Complex::cis(-phase);
        for e in &mut edges {
            e.weight *= unphase;
            if e.is_zero(tol) {
                e.weight = Complex::ZERO;
            }
        }
        let id = self.alloc(Node::new(level, edges));
        Edge::new(Complex::from_polar(norm, phase), NodeRef::Node(id))
    }

    /// Builds the subtree for `slice` rooted at `level`, returning the
    /// upward edge (normalization weight and target).
    fn build(&mut self, level: usize, slice: &[Complex]) -> Edge {
        let d = self.dims.dim(level);
        let chunk = slice.len() / d;
        let last_level = level + 1 == self.dims.len();

        let mut edges = Vec::with_capacity(d);
        for k in 0..d {
            let part = &slice[k * chunk..(k + 1) * chunk];
            let edge = if last_level {
                Edge::new(part[0], NodeRef::Terminal)
            } else {
                self.build(level + 1, part)
            };
            edges.push(edge);
        }
        self.finish_node(level, edges)
    }

    /// Builds the subtree for a sorted, deduplicated slice of
    /// `(flat index, amplitude)` entries, all inside the sub-space starting
    /// at `offset` with the given `strides`. Branches without entries become
    /// zero edges, which is what makes the construction linear in the
    /// support size instead of the space size.
    fn build_sparse(
        &mut self,
        level: usize,
        offset: usize,
        entries: &[(usize, Complex)],
        strides: &[usize],
    ) -> Edge {
        let d = self.dims.dim(level);
        let stride = strides[level];
        let last_level = level + 1 == self.dims.len();

        let mut edges = Vec::with_capacity(d);
        let mut rest = entries;
        for k in 0..d {
            let upper = offset + (k + 1) * stride;
            let split = rest.partition_point(|&(idx, _)| idx < upper);
            let (part, tail) = rest.split_at(split);
            rest = tail;
            let edge = if part.is_empty() {
                Edge::ZERO
            } else if last_level {
                Edge::new(part[0].1, NodeRef::Terminal)
            } else {
                self.build_sparse(level + 1, offset + k * stride, part, strides)
            };
            edges.push(edge);
        }
        self.finish_node(level, edges)
    }
}

impl StateDd {
    /// Builds a decision diagram from a dense amplitude vector.
    ///
    /// The vector is indexed in mixed-radix order with the *first* dimension
    /// of `dims` most significant (see [`Dims::index_of`]). The input does
    /// not have to be normalized; the resulting diagram always represents
    /// the normalized state (the overall scale is discarded, the global
    /// phase is kept on the root edge).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the length does not match
    /// `dims.space_size()`, an amplitude is not finite, or the norm is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::{BuildOptions, StateDd};
    /// use mdq_num::{radix::Dims, Complex};
    ///
    /// let dims = Dims::new(vec![2, 2])?;
    /// let h = Complex::real(0.5);
    /// let dd = StateDd::from_amplitudes(&dims, &[h, h, h, h], BuildOptions::default())?;
    /// assert!(dd.amplitude(&[1, 0]).approx_eq(h, 1e-12));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_amplitudes(
        dims: &Dims,
        amplitudes: &[Complex],
        opts: BuildOptions,
    ) -> Result<Self, BuildError> {
        if amplitudes.len() != dims.space_size() {
            return Err(BuildError::WrongLength {
                expected: dims.space_size(),
                got: amplitudes.len(),
            });
        }
        if let Some(index) = amplitudes.iter().position(|a| !a.is_finite()) {
            return Err(BuildError::NotFinite { index });
        }
        let norm = mdq_num::norm(amplitudes);
        if norm <= opts.tolerance.value() {
            return Err(BuildError::ZeroNorm);
        }

        let mut builder = Builder {
            dims,
            opts,
            nodes: Vec::new(),
        };
        let root_edge = builder.build(0, amplitudes);
        debug_assert!(!root_edge.is_zero(opts.tolerance.value()));
        // The up-weight magnitude is the input norm; keep only the phase so
        // the diagram represents the normalized state.
        let root_weight = Complex::cis(root_edge.weight.arg());
        Ok(StateDd {
            dims: dims.clone(),
            tolerance: opts.tolerance,
            nodes: builder.nodes,
            root: root_edge.target,
            root_weight,
        })
    }

    /// Builds a decision diagram from a *sparse* list of
    /// `(digits, amplitude)` entries, in time and memory linear in the
    /// support size — independent of the Hilbert-space size.
    ///
    /// This makes structured states practical far beyond what a dense
    /// vector permits: a GHZ state over 20 qudits (a space of billions of
    /// amplitudes) builds in microseconds because its diagram has one node
    /// per level. Amplitudes of repeated basis states are summed; entries
    /// that cancel to zero are dropped. The state is normalized as in
    /// [`StateDd::from_amplitudes`]. Zero branches are always pruned
    /// (`keep_zero_subtrees` is ignored — the unreduced tree is
    /// exponentially large by definition).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if an entry has the wrong digit count, a digit
    /// out of range, a non-finite amplitude, or the total norm is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::{BuildOptions, StateDd};
    /// use mdq_num::{radix::Dims, Complex};
    ///
    /// // GHZ over ten qutrits: 59049 amplitudes, but only 3 entries.
    /// let dims = Dims::uniform(10, 3)?;
    /// let a = Complex::real(1.0 / 3.0_f64.sqrt());
    /// let entries: Vec<(Vec<usize>, Complex)> =
    ///     (0..3).map(|l| (vec![l; 10], a)).collect();
    /// let dd = StateDd::from_sparse(&dims, &entries, BuildOptions::default())?;
    /// assert_eq!(dd.node_count(), 10 + 2 * 9); // 3 branches sharing nothing below the root
    /// assert!(dd.amplitude(&vec![2; 10]).approx_eq(a, 1e-12));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_sparse(
        dims: &Dims,
        entries: &[(Vec<usize>, Complex)],
        opts: BuildOptions,
    ) -> Result<Self, BuildError> {
        let mut flat: Vec<(usize, Complex)> = Vec::with_capacity(entries.len());
        for (i, (digits, amp)) in entries.iter().enumerate() {
            if digits.len() != dims.len() {
                return Err(BuildError::WrongDigitCount {
                    expected: dims.len(),
                    got: digits.len(),
                });
            }
            for (position, (&digit, &dim)) in digits.iter().zip(dims.as_slice()).enumerate() {
                if digit >= dim {
                    return Err(BuildError::DigitOutOfRange {
                        position,
                        digit,
                        dim,
                    });
                }
            }
            if !amp.is_finite() {
                return Err(BuildError::NotFinite { index: i });
            }
            flat.push((dims.index_of(digits), *amp));
        }
        flat.sort_by_key(|&(idx, _)| idx);
        // Sum duplicates, drop zeros.
        let tol = opts.tolerance.value();
        let mut dedup: Vec<(usize, Complex)> = Vec::with_capacity(flat.len());
        for (idx, amp) in flat {
            match dedup.last_mut() {
                Some((last, acc)) if *last == idx => *acc += amp,
                _ => dedup.push((idx, amp)),
            }
        }
        dedup.retain(|(_, a)| !a.is_zero(tol));
        let norm_sqr: f64 = dedup.iter().map(|(_, a)| a.norm_sqr()).sum();
        if norm_sqr.sqrt() <= tol {
            return Err(BuildError::ZeroNorm);
        }

        let mut builder = Builder {
            dims,
            opts: opts.keep_zero_subtrees(false),
            nodes: Vec::new(),
        };
        let strides = dims.strides();
        let root_edge = builder.build_sparse(0, 0, &dedup, &strides);
        let root_weight = Complex::cis(root_edge.weight.arg());
        Ok(StateDd {
            dims: dims.clone(),
            tolerance: opts.tolerance_value(),
            nodes: builder.nodes,
            root: root_edge.target,
            root_weight,
        })
    }

    /// Rebuilds the diagram with all-zero branches collapsed to single zero
    /// edges pointing at the terminal.
    ///
    /// On a diagram built with
    /// [`keep_zero_subtrees`](BuildOptions::keep_zero_subtrees) this realizes
    /// the transition from the paper's structural tree to the pruned tree the
    /// synthesizer actually traverses.
    #[must_use]
    pub fn prune_zero_subtrees(&self) -> StateDd {
        let tol = self.tolerance.value();
        let mut nodes = Vec::new();
        let mut memo: Vec<Option<NodeRef>> = vec![None; self.nodes.len()];

        // Bottom-up order: children precede parents in the arena.
        for (idx, node) in self.nodes.iter().enumerate() {
            let edges: Vec<Edge> = node
                .edges()
                .iter()
                .map(|e| {
                    if e.is_zero(tol) {
                        Edge::ZERO
                    } else {
                        let target = match e.target {
                            NodeRef::Terminal => NodeRef::Terminal,
                            NodeRef::Node(id) => {
                                memo[id.index()].expect("child built before parent")
                            }
                        };
                        Edge::new(e.weight, target)
                    }
                })
                .collect();
            if edges.iter().all(|e| e.is_zero(tol)) {
                // Zero node disappears entirely.
                memo[idx] = Some(NodeRef::Terminal);
            } else {
                let id = NodeId::new(nodes.len());
                nodes.push(Node::new(node.level(), edges));
                memo[idx] = Some(NodeRef::Node(id));
            }
        }

        let root = match self.root {
            NodeRef::Terminal => NodeRef::Terminal,
            NodeRef::Node(id) => memo[id.index()].expect("root visited"),
        };
        StateDd {
            dims: self.dims.clone(),
            tolerance: self.tolerance,
            nodes,
            root,
            root_weight: self.root_weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn ghz_362() -> (Dims, Vec<Complex>) {
        // (|000⟩ + |111⟩)/√2 on dims [3,6,2] (min dim 2 ⇒ two components).
        let d = dims(&[3, 6, 2]);
        let mut amps = vec![Complex::ZERO; d.space_size()];
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        amps[d.index_of(&[0, 0, 0])] = a;
        amps[d.index_of(&[1, 1, 1])] = a;
        (d, amps)
    }

    #[test]
    fn rejects_wrong_length() {
        let d = dims(&[2, 2]);
        let err = StateDd::from_amplitudes(&d, &[Complex::ONE], BuildOptions::default());
        assert_eq!(
            err.unwrap_err(),
            BuildError::WrongLength {
                expected: 4,
                got: 1
            }
        );
    }

    #[test]
    fn rejects_zero_norm() {
        let d = dims(&[2]);
        let err = StateDd::from_amplitudes(&d, &[Complex::ZERO; 2], BuildOptions::default());
        assert_eq!(err.unwrap_err(), BuildError::ZeroNorm);
    }

    #[test]
    fn rejects_non_finite() {
        let d = dims(&[2]);
        let amps = [Complex::new(f64::NAN, 0.0), Complex::ONE];
        let err = StateDd::from_amplitudes(&d, &amps, BuildOptions::default());
        assert_eq!(err.unwrap_err(), BuildError::NotFinite { index: 0 });
    }

    #[test]
    fn unnormalized_input_is_normalized() {
        let d = dims(&[2]);
        let amps = [Complex::real(3.0), Complex::real(4.0)];
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        assert!(dd.amplitude(&[0]).approx_eq(Complex::real(0.6), 1e-12));
        assert!(dd.amplitude(&[1]).approx_eq(Complex::real(0.8), 1e-12));
    }

    #[test]
    fn keep_zero_subtrees_builds_full_tree() {
        let (d, amps) = ghz_362();
        let opts = BuildOptions::default().keep_zero_subtrees(true);
        let dd = StateDd::from_amplitudes(&d, &amps, opts).unwrap();
        // Table 1: the unreduced tree for [3,6,2] has 58 edges.
        assert_eq!(dd.edge_count(), 58);
        assert_eq!(dd.node_count(), d.full_tree_node_count());
    }

    #[test]
    fn pruned_build_skips_zero_branches() {
        let (d, amps) = ghz_362();
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        // Table 1: the approximated GHZ diagram for [3,6,2] has 20 edges.
        assert_eq!(dd.edge_count(), 20);
        // root + two level-1 nodes + two level-2 nodes
        assert_eq!(dd.node_count(), 5);
    }

    #[test]
    fn prune_zero_subtrees_matches_direct_pruned_build() {
        let (d, amps) = ghz_362();
        let full =
            StateDd::from_amplitudes(&d, &amps, BuildOptions::default().keep_zero_subtrees(true))
                .unwrap();
        let pruned = full.prune_zero_subtrees();
        assert_eq!(pruned.edge_count(), 20);
        assert_eq!(pruned.node_count(), 5);
        for (a, b) in full.to_amplitudes().iter().zip(pruned.to_amplitudes()) {
            assert!(a.approx_eq(b, 1e-12));
        }
    }

    #[test]
    fn node_weights_are_normalized() {
        let (d, amps) = ghz_362();
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        for node in dd.nodes() {
            let s: f64 = node.edges().iter().map(|e| e.weight.norm_sqr()).sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phase_canonicalization_pulls_phase_to_parent() {
        // (|0⟩ ⊗ |+⟩ + |1⟩ ⊗ e^{iφ}|+⟩)/√2: both children equal up to phase.
        let d = dims(&[2, 2]);
        let phi = 1.234;
        let p = Complex::cis(phi);
        let h = Complex::real(0.5);
        let amps = [h, h, h * p, h * p];
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        // After canonicalization the two level-1 nodes are structurally equal…
        let root = dd.node(dd.root().1.id().unwrap());
        let c0 = dd.node(root.edges()[0].target.id().unwrap());
        let c1 = dd.node(root.edges()[1].target.id().unwrap());
        assert_eq!(c0, c1);
        // …and the reduced diagram shares them.
        let reduced = dd.reduce();
        assert_eq!(reduced.node_count(), 2);
    }

    #[test]
    fn global_phase_is_kept_on_root_edge() {
        let d = dims(&[2]);
        let g = Complex::cis(0.7);
        let inv = 1.0 / 2.0_f64.sqrt();
        let amps = [g * Complex::real(inv), g * Complex::real(inv)];
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        assert!(dd.root().0.approx_eq(g, 1e-12));
        for (a, b) in amps.iter().zip(dd.to_amplitudes()) {
            assert!(a.approx_eq(b, 1e-12));
        }
    }

    #[test]
    fn sparse_build_matches_dense_build() {
        let d = dims(&[3, 6, 2]);
        // W-like sparse state with mixed phases.
        let entries: Vec<(Vec<usize>, Complex)> = vec![
            (vec![0, 0, 1], Complex::real(0.5)),
            (vec![0, 3, 0], Complex::new(0.0, -0.5)),
            (vec![2, 0, 0], Complex::from_polar(0.5, 1.0)),
            (vec![1, 5, 1], Complex::real(-0.5)),
        ];
        let sparse = StateDd::from_sparse(&d, &entries, BuildOptions::default()).unwrap();
        let mut dense = vec![Complex::ZERO; d.space_size()];
        for (digits, amp) in &entries {
            dense[d.index_of(digits)] = *amp;
        }
        let dense = StateDd::from_amplitudes(&d, &dense, BuildOptions::default()).unwrap();
        assert_eq!(sparse.node_count(), dense.node_count());
        assert_eq!(sparse.edge_count(), dense.edge_count());
        assert!((sparse.fidelity(&dense) - 1.0).abs() < 1e-12);
        for (a, b) in sparse.to_amplitudes().iter().zip(dense.to_amplitudes()) {
            assert!(a.approx_eq(b, 1e-12));
        }
    }

    #[test]
    fn sparse_build_sums_duplicates_and_drops_cancellations() {
        let d = dims(&[2, 2]);
        let entries = vec![
            (vec![0, 0], Complex::real(0.5)),
            (vec![0, 0], Complex::real(0.5)),
            (vec![1, 1], Complex::real(0.7)),
            (vec![1, 1], Complex::real(-0.7)),
            (vec![0, 1], Complex::real(1.0)),
        ];
        let dd = StateDd::from_sparse(&d, &entries, BuildOptions::default()).unwrap();
        // |00⟩ amplitude 1.0, |01⟩ amplitude 1.0, |11⟩ cancelled.
        assert!(dd.amplitude(&[1, 1]).is_zero(1e-12));
        let a = dd.amplitude(&[0, 0]);
        let b = dd.amplitude(&[0, 1]);
        assert!(a.approx_eq(b, 1e-12));
        assert!((a.norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_build_validates_entries() {
        let d = dims(&[2, 2]);
        assert_eq!(
            StateDd::from_sparse(&d, &[(vec![0], Complex::ONE)], BuildOptions::default())
                .unwrap_err(),
            BuildError::WrongDigitCount {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            StateDd::from_sparse(&d, &[(vec![0, 2], Complex::ONE)], BuildOptions::default())
                .unwrap_err(),
            BuildError::DigitOutOfRange {
                position: 1,
                digit: 2,
                dim: 2
            }
        );
        assert_eq!(
            StateDd::from_sparse(&d, &[], BuildOptions::default()).unwrap_err(),
            BuildError::ZeroNorm
        );
        assert_eq!(
            StateDd::from_sparse(
                &d,
                &[(vec![0, 0], Complex::new(f64::INFINITY, 0.0))],
                BuildOptions::default()
            )
            .unwrap_err(),
            BuildError::NotFinite { index: 0 }
        );
    }

    #[test]
    fn sparse_build_scales_past_dense_limits() {
        // 20 mixed-dimensional qudits: the space has ~3.6e9 amplitudes, far
        // beyond a dense vector, but the GHZ diagram has 2 nodes per level
        // beyond the root.
        let pattern = [
            3usize, 4, 2, 5, 3, 2, 4, 3, 2, 3, 4, 2, 5, 3, 2, 3, 4, 2, 3, 5,
        ];
        let d = dims(&pattern);
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        let entries = vec![(vec![0; 20], a), (vec![1; 20], a)];
        let dd = StateDd::from_sparse(&d, &entries, BuildOptions::default()).unwrap();
        assert_eq!(dd.node_count(), 1 + 2 * 19);
        assert!(dd.amplitude(&[1; 20]).approx_eq(a, 1e-12));
        assert!(dd
            .amplitude(&{
                let mut v = vec![0; 20];
                v[7] = 1;
                v
            })
            .is_zero(1e-12));
    }

    #[test]
    fn single_qudit_diagram() {
        let d = dims(&[5]);
        let mut amps = vec![Complex::ZERO; 5];
        amps[3] = Complex::ONE;
        let dd = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        assert_eq!(dd.node_count(), 1);
        assert_eq!(dd.edge_count(), 6);
        assert!(dd.amplitude(&[3]).approx_eq(Complex::ONE, 1e-12));
        assert!(dd.amplitude(&[0]).is_zero(1e-12));
    }
}
