//! The evaluation metrics of the paper's Table 1: node count, edge count,
//! and distinct complex values ("DistinctC").

use mdq_num::{ComplexTable, Tolerance};

use crate::StateDd;

/// Structural size figures of a diagram, as reported in the paper's
/// evaluation (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdMetrics {
    /// Number of internal nodes (terminal excluded).
    pub node_count: usize,
    /// Number of edges including the incoming root edge. This is the
    /// "Nodes" column of Table 1 (58 for the unreduced `[3,6,2]` tree).
    pub edge_count: usize,
    /// Number of distinct complex edge weights under the diagram tolerance,
    /// including the root weight — the "DistinctC" column.
    pub distinct_complex: usize,
}

impl StateDd {
    /// Number of internal nodes (the terminal is not counted).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes().len()
    }

    /// Number of edges including the incoming root edge.
    ///
    /// On a diagram built with
    /// [`keep_zero_subtrees`](crate::BuildOptions::keep_zero_subtrees) this
    /// equals [`Dims::full_tree_edge_count`](mdq_num::radix::Dims::full_tree_edge_count)
    /// and reproduces the "Nodes" column for exact synthesis in Table 1.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        1 + self.nodes().iter().map(|n| n.edges().len()).sum::<usize>()
    }

    /// Number of distinct complex edge weights (including the root weight)
    /// under the diagram tolerance — the paper's "DistinctC" metric.
    ///
    /// For a GHZ state this is 3 ({0, 1, 1/√k}); for a fully random state it
    /// approaches the edge count because every weight differs.
    #[must_use]
    pub fn distinct_complex_count(&self) -> usize {
        let mut table = ComplexTable::new(self.tolerance());
        table.insert(self.root().0);
        for node in self.nodes() {
            for edge in node.edges() {
                table.insert(edge.weight);
            }
        }
        table.len()
    }

    /// All three size metrics in one pass.
    #[must_use]
    pub fn metrics(&self) -> DdMetrics {
        DdMetrics {
            node_count: self.node_count(),
            edge_count: self.edge_count(),
            distinct_complex: self.distinct_complex_count(),
        }
    }

    /// Approximate heap footprint of the diagram in bytes (nodes and edges).
    ///
    /// Useful for the paper's memory-reduction claims; exact allocator
    /// overhead is not modeled.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.nodes())
            + self
                .nodes()
                .iter()
                .map(|n| std::mem::size_of_val(n.edges()))
                .sum::<usize>()
    }

    /// Number of distinct complex values at a caller-chosen tolerance
    /// (coarser tolerances merge more weights).
    #[must_use]
    pub fn distinct_complex_count_at(&self, tolerance: Tolerance) -> usize {
        let mut table = ComplexTable::new(tolerance);
        table.insert(self.root().0);
        for node in self.nodes() {
            for edge in node.edges() {
                table.insert(edge.weight);
            }
        }
        table.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::{BuildOptions, StateDd};
    use mdq_num::radix::Dims;
    use mdq_num::Complex;

    fn ghz(dims: &Dims) -> Vec<Complex> {
        let k = dims.as_slice().iter().copied().min().unwrap();
        let a = Complex::real(1.0 / (k as f64).sqrt());
        let mut amps = vec![Complex::ZERO; dims.space_size()];
        for level in 0..k {
            let digits = vec![level; dims.len()];
            amps[dims.index_of(&digits)] = a;
        }
        amps
    }

    #[test]
    fn ghz_full_tree_metrics_match_table_one() {
        let dims = Dims::new(vec![3, 6, 2]).unwrap();
        let dd = StateDd::from_amplitudes(
            &dims,
            &ghz(&dims),
            BuildOptions::default().keep_zero_subtrees(true),
        )
        .unwrap();
        let m = dd.metrics();
        assert_eq!(m.edge_count, 58); // Table 1, GHZ row, Exact "Nodes"
        assert_eq!(m.distinct_complex, 3); // Table 1, GHZ row, "DistinctC"
    }

    #[test]
    fn ghz_pruned_metrics_match_table_one_approximated() {
        let dims = Dims::new(vec![3, 6, 2]).unwrap();
        let dd = StateDd::from_amplitudes(&dims, &ghz(&dims), BuildOptions::default()).unwrap();
        assert_eq!(dd.edge_count(), 20); // Table 1, GHZ row, Approximated "Nodes"
        assert_eq!(dd.distinct_complex_count(), 3);
    }

    #[test]
    fn ghz_metrics_on_larger_registers() {
        for (dims, full_edges) in [
            (vec![9, 5, 6, 3], 1135usize),
            (vec![4, 7, 4, 4, 3, 5], 8657),
        ] {
            let dims = Dims::new(dims).unwrap();
            let dd = StateDd::from_amplitudes(
                &dims,
                &ghz(&dims),
                BuildOptions::default().keep_zero_subtrees(true),
            )
            .unwrap();
            assert_eq!(dd.edge_count(), full_edges);
            assert_eq!(dd.distinct_complex_count(), 3);
        }
    }

    #[test]
    fn coarser_tolerance_merges_weights() {
        let dims = Dims::new(vec![2]).unwrap();
        let amps = [Complex::real(0.6), Complex::real(0.8)];
        let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
        assert_eq!(dd.distinct_complex_count(), 3); // {1, 0.6, 0.8}
        assert_eq!(
            dd.distinct_complex_count_at(mdq_num::Tolerance::new(0.5)),
            1
        );
    }

    #[test]
    fn memory_tracks_node_and_edge_counts() {
        let dims = Dims::new(vec![3, 6, 2]).unwrap();
        let full = StateDd::from_amplitudes(
            &dims,
            &ghz(&dims),
            BuildOptions::default().keep_zero_subtrees(true),
        )
        .unwrap();
        let pruned = full.prune_zero_subtrees();
        assert!(pruned.memory_bytes() < full.memory_bytes());
    }
}
