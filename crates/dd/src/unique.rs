//! The unique table: the hash-consing index of a [`DdArena`].
//!
//! Every canonical node is registered here under its structural signature —
//! level plus the `(canonical weight id, successor)` pair of every edge.
//! Interning a node whose signature is already present returns the existing
//! node instead of allocating a new one, which is what makes arena-built
//! diagrams maximally shared *by construction* (the paper's §4.3 reduction
//! rule, applied eagerly the way mature DD packages do it).
//!
//! Weight components of the signature are [`CanonicalId`]s from the arena's
//! tolerance-bucketed [`ComplexTable`](mdq_num::ComplexTable), so subtrees
//! that are equal only up to the diagram tolerance still collide on the same
//! signature and merge.
//!
//! [`DdArena`]: crate::DdArena
//! [`CanonicalId`]: mdq_num::CanonicalId

use std::collections::HashMap;

use crate::node::{NodeId, NodeRef};

/// Structural signature of a canonical node: its level and, per edge, the
/// canonical id of the weight together with the successor reference.
///
/// Zero edges are represented as `(id of 0, Terminal)`, so two nodes that
/// differ only in how their zero branches were produced share a signature.
pub type NodeSignature = (usize, Vec<(u32, NodeRef)>);

/// Hash-consing index mapping [`NodeSignature`]s to interned [`NodeId`]s.
///
/// The table only stores signatures of *canonical* nodes; unshared tree
/// allocations (the `keep_zero_subtrees` Table-1 reproduction path) bypass
/// it entirely.
#[derive(Debug, Clone, Default)]
pub struct UniqueTable {
    map: HashMap<NodeSignature, NodeId>,
}

impl UniqueTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered signatures (equals the number of canonical nodes
    /// interned through this table).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table holds no signatures.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every signature while retaining the map's allocated capacity —
    /// the [`DdArena::reset`](crate::DdArena::reset) recycling path.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Looks up the node interned under `signature`, if any.
    #[must_use]
    pub fn get(&self, signature: &NodeSignature) -> Option<NodeId> {
        self.map.get(signature).copied()
    }

    /// Registers `signature` for `id`. Returns the previously registered
    /// node if the signature was already present (the caller should then
    /// discard its candidate and reuse the existing node).
    pub fn insert(&mut self, signature: NodeSignature, id: NodeId) -> Option<NodeId> {
        self.map.insert(signature, id)
    }
}

/// A [`UniqueTable`] fanned out over fingerprint-selected shards.
///
/// Signatures route to a shard by an FNV-style fingerprint of the level and
/// edge parts, so heavy hash-consing traffic (the parallel-build merge phase,
/// large `apply_circuit_with` runs) spreads over several independent maps
/// instead of serializing on one. With one shard the behaviour is identical
/// to the plain table.
#[derive(Debug, Clone)]
pub struct ShardedUniqueTable {
    shards: Vec<UniqueTable>,
    mask: usize,
}

impl ShardedUniqueTable {
    /// Creates an empty table with `shards` shards (rounded up to a power of
    /// two, minimum 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| UniqueTable::new()).collect(),
            mask: n - 1,
        }
    }

    /// Number of shards (always a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, signature: &NodeSignature) -> usize {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = (h ^ signature.0 as u64).wrapping_mul(PRIME);
        for &(weight, target) in &signature.1 {
            h = (h ^ u64::from(weight)).wrapping_mul(PRIME);
            let t = match target {
                NodeRef::Terminal => u64::MAX,
                NodeRef::Node(id) => id.index() as u64,
            };
            h = (h ^ t).wrapping_mul(PRIME);
        }
        (h as usize) & self.mask
    }

    /// Total number of registered signatures across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(UniqueTable::len).sum()
    }

    /// Whether no shard holds any signature.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(UniqueTable::is_empty)
    }

    /// Drops every signature in every shard, retaining capacity.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }

    /// Re-targets the table at a (possibly different) shard count, dropping
    /// every signature. When the count is unchanged this keeps allocated
    /// capacity; otherwise the shard vector is rebuilt at the new width.
    pub fn configure(&mut self, shards: usize) {
        let n = shards.max(1).next_power_of_two();
        if n == self.shards.len() {
            self.clear();
            return;
        }
        self.shards = (0..n).map(|_| UniqueTable::new()).collect();
        self.mask = n - 1;
    }

    /// Looks up the node interned under `signature`, if any.
    #[must_use]
    pub fn get(&self, signature: &NodeSignature) -> Option<NodeId> {
        self.shards[self.shard_of(signature)].get(signature)
    }

    /// Registers `signature` for `id` in its fingerprint-selected shard.
    pub fn insert(&mut self, signature: NodeSignature, id: NodeId) -> Option<NodeId> {
        let shard = self.shard_of(&signature);
        self.shards[shard].insert(signature, id)
    }
}

impl Default for ShardedUniqueTable {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(level: usize, parts: &[(u32, NodeRef)]) -> NodeSignature {
        (level, parts.to_vec())
    }

    #[test]
    fn empty_table_has_no_entries() {
        let t = UniqueTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(&sig(0, &[(0, NodeRef::Terminal)])), None);
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut t = UniqueTable::new();
        let s = sig(1, &[(3, NodeRef::Terminal), (0, NodeRef::Terminal)]);
        assert_eq!(t.insert(s.clone(), NodeId::new(7)), None);
        assert_eq!(t.get(&s), Some(NodeId::new(7)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn signatures_distinguish_level_and_edges() {
        let mut t = UniqueTable::new();
        t.insert(sig(0, &[(1, NodeRef::Terminal)]), NodeId::new(0));
        t.insert(sig(1, &[(1, NodeRef::Terminal)]), NodeId::new(1));
        t.insert(sig(0, &[(2, NodeRef::Terminal)]), NodeId::new(2));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicate_insert_reports_existing_node() {
        let mut t = UniqueTable::new();
        let s = sig(2, &[(5, NodeRef::Node(NodeId::new(1)))]);
        t.insert(s.clone(), NodeId::new(4));
        assert_eq!(t.insert(s, NodeId::new(9)), Some(NodeId::new(4)));
    }

    #[test]
    fn sharded_round_trips_at_any_shard_count() {
        for shards in [1, 2, 4, 8] {
            let mut t = ShardedUniqueTable::new(shards);
            let sigs: Vec<NodeSignature> = (0usize..64)
                .map(|i| {
                    sig(
                        i % 5,
                        &[
                            (i as u32, NodeRef::Terminal),
                            (i as u32 + 1, NodeRef::Node(NodeId::new(i))),
                        ],
                    )
                })
                .collect();
            for (i, s) in sigs.iter().enumerate() {
                assert_eq!(t.insert(s.clone(), NodeId::new(i)), None);
            }
            assert_eq!(t.len(), sigs.len());
            for (i, s) in sigs.iter().enumerate() {
                assert_eq!(t.get(s), Some(NodeId::new(i)));
            }
        }
    }

    #[test]
    fn sharded_duplicate_reports_existing() {
        let mut t = ShardedUniqueTable::new(4);
        let s = sig(1, &[(2, NodeRef::Terminal)]);
        t.insert(s.clone(), NodeId::new(0));
        assert_eq!(t.insert(s, NodeId::new(3)), Some(NodeId::new(0)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sharded_configure_resizes_and_clears() {
        let mut t = ShardedUniqueTable::new(2);
        t.insert(sig(0, &[(1, NodeRef::Terminal)]), NodeId::new(0));
        t.configure(8);
        assert_eq!(t.shard_count(), 8);
        assert!(t.is_empty());
        t.insert(sig(0, &[(1, NodeRef::Terminal)]), NodeId::new(0));
        t.configure(8);
        assert!(t.is_empty());
        assert_eq!(t.shard_count(), 8);
    }

    #[test]
    fn sharded_count_rounds_to_power_of_two() {
        assert_eq!(ShardedUniqueTable::new(0).shard_count(), 1);
        assert_eq!(ShardedUniqueTable::new(3).shard_count(), 4);
    }
}
