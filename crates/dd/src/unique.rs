//! The unique table: the hash-consing index of a [`DdArena`].
//!
//! Every canonical node is registered here under its structural signature —
//! level plus the `(canonical weight id, successor)` pair of every edge.
//! Interning a node whose signature is already present returns the existing
//! node instead of allocating a new one, which is what makes arena-built
//! diagrams maximally shared *by construction* (the paper's §4.3 reduction
//! rule, applied eagerly the way mature DD packages do it).
//!
//! Weight components of the signature are [`CanonicalId`]s from the arena's
//! tolerance-bucketed [`ComplexTable`](mdq_num::ComplexTable), so subtrees
//! that are equal only up to the diagram tolerance still collide on the same
//! signature and merge.
//!
//! [`DdArena`]: crate::DdArena
//! [`CanonicalId`]: mdq_num::CanonicalId

use std::collections::HashMap;

use crate::node::{NodeId, NodeRef};

/// Structural signature of a canonical node: its level and, per edge, the
/// canonical id of the weight together with the successor reference.
///
/// Zero edges are represented as `(id of 0, Terminal)`, so two nodes that
/// differ only in how their zero branches were produced share a signature.
pub type NodeSignature = (usize, Vec<(u32, NodeRef)>);

/// Hash-consing index mapping [`NodeSignature`]s to interned [`NodeId`]s.
///
/// The table only stores signatures of *canonical* nodes; unshared tree
/// allocations (the `keep_zero_subtrees` Table-1 reproduction path) bypass
/// it entirely.
#[derive(Debug, Clone, Default)]
pub struct UniqueTable {
    map: HashMap<NodeSignature, NodeId>,
}

impl UniqueTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered signatures (equals the number of canonical nodes
    /// interned through this table).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table holds no signatures.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every signature while retaining the map's allocated capacity —
    /// the [`DdArena::reset`](crate::DdArena::reset) recycling path.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Looks up the node interned under `signature`, if any.
    #[must_use]
    pub fn get(&self, signature: &NodeSignature) -> Option<NodeId> {
        self.map.get(signature).copied()
    }

    /// Registers `signature` for `id`. Returns the previously registered
    /// node if the signature was already present (the caller should then
    /// discard its candidate and reuse the existing node).
    pub fn insert(&mut self, signature: NodeSignature, id: NodeId) -> Option<NodeId> {
        self.map.insert(signature, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(level: usize, parts: &[(u32, NodeRef)]) -> NodeSignature {
        (level, parts.to_vec())
    }

    #[test]
    fn empty_table_has_no_entries() {
        let t = UniqueTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(&sig(0, &[(0, NodeRef::Terminal)])), None);
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut t = UniqueTable::new();
        let s = sig(1, &[(3, NodeRef::Terminal), (0, NodeRef::Terminal)]);
        assert_eq!(t.insert(s.clone(), NodeId::new(7)), None);
        assert_eq!(t.get(&s), Some(NodeId::new(7)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn signatures_distinguish_level_and_edges() {
        let mut t = UniqueTable::new();
        t.insert(sig(0, &[(1, NodeRef::Terminal)]), NodeId::new(0));
        t.insert(sig(1, &[(1, NodeRef::Terminal)]), NodeId::new(1));
        t.insert(sig(0, &[(2, NodeRef::Terminal)]), NodeId::new(2));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicate_insert_reports_existing_node() {
        let mut t = UniqueTable::new();
        let s = sig(2, &[(5, NodeRef::Node(NodeId::new(1)))]);
        t.insert(s.clone(), NodeId::new(4));
        assert_eq!(t.insert(s, NodeId::new(9)), Some(NodeId::new(4)));
    }
}
