//! Human-readable and Graphviz renderings of decision diagrams.

use std::fmt::Write as _;

use mdq_num::Complex;

use crate::node::NodeRef;
use crate::StateDd;

/// Formats an edge weight for DOT labels: components within `tol` of zero
/// are dropped and the rest is rounded to five decimals, so labels are free
/// of floating-point noise and identical across build paths.
fn fmt_weight(w: Complex, tol: f64) -> String {
    fn fmt_component(x: f64) -> String {
        if x.abs() < 1e-5 {
            // Below the rounded precision but above the tolerance: render
            // in scientific notation instead of collapsing to "0" on an
            // edge that is still drawn.
            return format!("{x:e}");
        }
        let mut s = format!("{x:.5}");
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
        if s == "-0" {
            s = "0".to_owned();
        }
        s
    }
    let re = if w.re.abs() <= tol { 0.0 } else { w.re };
    let im = if w.im.abs() <= tol { 0.0 } else { w.im };
    match (re == 0.0, im == 0.0) {
        (true, true) => "0".to_owned(),
        (false, true) => fmt_component(re),
        (true, false) => format!("{}i", fmt_component(im)),
        (false, false) if im < 0.0 => {
            format!("{}-{}i", fmt_component(re), fmt_component(-im))
        }
        (false, false) => format!("{}+{}i", fmt_component(re), fmt_component(im)),
    }
}

impl StateDd {
    /// Renders the diagram in Graphviz DOT format.
    ///
    /// Zero-weight edges are omitted; edge labels show the successor index
    /// and the weight. Render with e.g. `dot -Tpdf`.
    ///
    /// Node names are assigned by a depth-first walk from the root in edge
    /// order — **not** by arena index — so the output is deterministic for a
    /// given state regardless of how the diagram was produced (dense build,
    /// sparse build, circuit application, …) and DOT dumps are diffable
    /// across runs.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::{BuildOptions, StateDd};
    /// use mdq_num::{radix::Dims, Complex};
    ///
    /// let dims = Dims::new(vec![2])?;
    /// let a = Complex::real(1.0 / 2.0_f64.sqrt());
    /// let dd = StateDd::from_amplitudes(&dims, &[a, a], BuildOptions::default())?;
    /// assert!(dd.to_dot().contains("digraph"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let tol = self.tolerance().value();
        let order = self.display_order();
        let mut pos = vec![usize::MAX; self.node_count()];
        for (display, &idx) in order.iter().enumerate() {
            pos[idx] = display;
        }
        let mut out = String::new();
        out.push_str("digraph statedd {\n  rankdir=TB;\n");
        out.push_str("  entry [shape=point];\n  terminal [shape=box,label=\"1\"];\n");
        for (display, &idx) in order.iter().enumerate() {
            let node = &self.nodes()[idx];
            let _ = writeln!(
                out,
                "  n{display} [shape=circle,label=\"q{}\"];",
                self.dims().len() - 1 - node.level()
            );
        }
        let (w, root) = self.root();
        if let NodeRef::Node(id) = root {
            let _ = writeln!(
                out,
                "  entry -> n{} [label=\"{}\"];",
                pos[id.index()],
                fmt_weight(w, tol)
            );
        }
        for (display, &idx) in order.iter().enumerate() {
            let node = &self.nodes()[idx];
            for (k, edge) in node.edges().iter().enumerate() {
                if edge.is_zero(tol) {
                    continue;
                }
                let target = match edge.target {
                    NodeRef::Terminal => "terminal".to_owned(),
                    NodeRef::Node(id) => format!("n{}", pos[id.index()]),
                };
                let _ = writeln!(
                    out,
                    "  n{display} -> {target} [label=\"{k}: {}\"];",
                    fmt_weight(edge.weight, tol)
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// Arena indices in pre-order of a depth-first walk from the root
    /// following edges in successor order — a stable presentation order
    /// independent of interning order. Unreachable nodes are omitted.
    fn display_order(&self) -> Vec<usize> {
        let tol = self.tolerance().value();
        let mut order = Vec::with_capacity(self.node_count());
        let mut seen = vec![false; self.node_count()];
        let mut stack: Vec<usize> = Vec::new();
        if let (_, NodeRef::Node(root)) = self.root() {
            stack.push(root.index());
            seen[root.index()] = true;
        }
        while let Some(idx) = stack.pop() {
            order.push(idx);
            // Push children in reverse edge order so they pop in edge order.
            for edge in self.nodes()[idx].edges().iter().rev() {
                if edge.is_zero(tol) {
                    continue;
                }
                if let NodeRef::Node(child) = edge.target {
                    if !seen[child.index()] {
                        seen[child.index()] = true;
                        stack.push(child.index());
                    }
                }
            }
        }
        order
    }

    /// Renders the diagram as an indented text tree, one line per edge,
    /// suitable for terminal output (used by the Figure 3 example).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let (w, root) = self.root();
        let _ = writeln!(out, "root ── {w} ──▶ {root}");
        if let NodeRef::Node(id) = root {
            self.text_rec(id, 1, &mut out);
        }
        out
    }

    fn text_rec(&self, id: crate::NodeId, depth: usize, out: &mut String) {
        let tol = self.tolerance().value();
        let node = self.node(id);
        for (k, edge) in node.edges().iter().enumerate() {
            let indent = "  ".repeat(depth);
            if edge.is_zero(tol) {
                let _ = writeln!(out, "{indent}[{k}] ── 0");
                continue;
            }
            let _ = writeln!(out, "{indent}[{k}] ── {} ──▶ {}", edge.weight, edge.target);
            if let NodeRef::Node(child) = edge.target {
                self.text_rec(child, depth + 1, out);
            }
        }
    }
}

/// Renders a short one-line summary of a diagram ("nodes=…, edges=…,
/// distinct=…"), convenient for examples and logs.
#[must_use]
pub fn render_summary(dd: &StateDd) -> String {
    let m = dd.metrics();
    format!(
        "dims={} nodes={} edges={} distinctC={}",
        dd.dims(),
        m.node_count,
        m.edge_count,
        m.distinct_complex
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildOptions, StateDd};
    use mdq_num::radix::Dims;
    use mdq_num::Complex;

    fn fig3() -> StateDd {
        let d = Dims::new(vec![3, 2]).unwrap();
        let a = 1.0 / 3.0_f64.sqrt();
        let mut amps = vec![Complex::ZERO; 6];
        amps[0] = Complex::real(a);
        amps[3] = Complex::real(-a);
        amps[5] = Complex::real(a);
        StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap()
    }

    #[test]
    fn dot_output_is_well_formed() {
        let dot = fig3().to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("entry ->"));
        assert!(dot.contains("terminal"));
    }

    #[test]
    fn dot_omits_zero_edges() {
        let dot = fig3().to_dot();
        // The root's level-0 branch has a zero |1⟩ edge that must not appear.
        let edge_lines = dot.lines().filter(|l| l.contains("->")).count();
        // entry edge + 3 root edges + 2×(nonzero leaf edges: 1 each… the
        // three leaf nodes have 4 nonzero edges total across 3 nodes).
        assert!(edge_lines >= 6);
        assert!(!dot.contains("label=\"1: 0\""));
    }

    #[test]
    fn dot_snapshot_is_stable() {
        // Full snapshot of the Fig. 3 diagram: any change to node naming,
        // ordering, or labels must be a conscious decision.
        let expected = "\
digraph statedd {
  rankdir=TB;
  entry [shape=point];
  terminal [shape=box,label=\"1\"];
  n0 [shape=circle,label=\"q1\"];
  n1 [shape=circle,label=\"q0\"];
  n2 [shape=circle,label=\"q0\"];
  entry -> n0 [label=\"1\"];
  n0 -> n1 [label=\"0: 0.57735\"];
  n0 -> n2 [label=\"1: -0.57735\"];
  n0 -> n2 [label=\"2: 0.57735\"];
  n1 -> terminal [label=\"0: 1\"];
  n2 -> terminal [label=\"1: 1\"];
}
";
        assert_eq!(fig3().to_dot(), expected);
    }

    #[test]
    fn dot_is_deterministic_across_build_paths() {
        // The same state built densely and sparsely must render to the same
        // DOT text, independent of interning order.
        let d = Dims::new(vec![3, 6, 2]).unwrap();
        let entries: Vec<(Vec<usize>, Complex)> = vec![
            (vec![0, 0, 1], Complex::real(0.5)),
            (vec![0, 3, 0], Complex::real(-0.5)),
            (vec![2, 0, 0], Complex::real(0.5)),
            (vec![1, 5, 1], Complex::real(0.5)),
        ];
        let sparse = StateDd::from_sparse(&d, &entries, BuildOptions::default()).unwrap();
        let mut dense = vec![Complex::ZERO; d.space_size()];
        for (digits, amp) in &entries {
            dense[d.index_of(digits)] = *amp;
        }
        let dense = StateDd::from_amplitudes(&d, &dense, BuildOptions::default()).unwrap();
        assert_eq!(sparse.to_dot(), dense.to_dot());
    }

    #[test]
    fn text_rendering_walks_all_branches() {
        let text = fig3().to_text();
        assert!(text.contains("root"));
        assert!(text.contains("[0]"));
        assert!(text.contains("[2]"));
    }

    #[test]
    fn summary_contains_metrics() {
        let dd = fig3();
        let s = render_summary(&dd);
        assert!(s.contains("dims=[3,2]"));
        assert!(s.contains("edges="));
    }
}
