//! Human-readable and Graphviz renderings of decision diagrams.

use std::fmt::Write as _;

use crate::node::NodeRef;
use crate::StateDd;

impl StateDd {
    /// Renders the diagram in Graphviz DOT format.
    ///
    /// Zero-weight edges are omitted; edge labels show the successor index
    /// and the weight. Render with e.g. `dot -Tpdf`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::{BuildOptions, StateDd};
    /// use mdq_num::{radix::Dims, Complex};
    ///
    /// let dims = Dims::new(vec![2])?;
    /// let a = Complex::real(1.0 / 2.0_f64.sqrt());
    /// let dd = StateDd::from_amplitudes(&dims, &[a, a], BuildOptions::default())?;
    /// assert!(dd.to_dot().contains("digraph"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let tol = self.tolerance().value();
        let mut out = String::new();
        out.push_str("digraph statedd {\n  rankdir=TB;\n");
        out.push_str("  entry [shape=point];\n  terminal [shape=box,label=\"1\"];\n");
        for (idx, node) in self.nodes().iter().enumerate() {
            let _ = writeln!(
                out,
                "  n{idx} [shape=circle,label=\"q{}\"];",
                self.dims().len() - 1 - node.level()
            );
        }
        let (w, root) = self.root();
        if let NodeRef::Node(id) = root {
            let _ = writeln!(out, "  entry -> n{} [label=\"{w}\"];", id.index());
        }
        for (idx, node) in self.nodes().iter().enumerate() {
            for (k, edge) in node.edges().iter().enumerate() {
                if edge.is_zero(tol) {
                    continue;
                }
                let target = match edge.target {
                    NodeRef::Terminal => "terminal".to_owned(),
                    NodeRef::Node(id) => format!("n{}", id.index()),
                };
                let _ = writeln!(
                    out,
                    "  n{idx} -> {target} [label=\"{k}: {}\"];",
                    edge.weight
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the diagram as an indented text tree, one line per edge,
    /// suitable for terminal output (used by the Figure 3 example).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let (w, root) = self.root();
        let _ = writeln!(out, "root ── {w} ──▶ {root}");
        if let NodeRef::Node(id) = root {
            self.text_rec(id, 1, &mut out);
        }
        out
    }

    fn text_rec(&self, id: crate::NodeId, depth: usize, out: &mut String) {
        let tol = self.tolerance().value();
        let node = self.node(id);
        for (k, edge) in node.edges().iter().enumerate() {
            let indent = "  ".repeat(depth);
            if edge.is_zero(tol) {
                let _ = writeln!(out, "{indent}[{k}] ── 0");
                continue;
            }
            let _ = writeln!(out, "{indent}[{k}] ── {} ──▶ {}", edge.weight, edge.target);
            if let NodeRef::Node(child) = edge.target {
                self.text_rec(child, depth + 1, out);
            }
        }
    }
}

/// Renders a short one-line summary of a diagram ("nodes=…, edges=…,
/// distinct=…"), convenient for examples and logs.
#[must_use]
pub fn render_summary(dd: &StateDd) -> String {
    let m = dd.metrics();
    format!(
        "dims={} nodes={} edges={} distinctC={}",
        dd.dims(),
        m.node_count,
        m.edge_count,
        m.distinct_complex
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuildOptions, StateDd};
    use mdq_num::radix::Dims;
    use mdq_num::Complex;

    fn fig3() -> StateDd {
        let d = Dims::new(vec![3, 2]).unwrap();
        let a = 1.0 / 3.0_f64.sqrt();
        let mut amps = vec![Complex::ZERO; 6];
        amps[0] = Complex::real(a);
        amps[3] = Complex::real(-a);
        amps[5] = Complex::real(a);
        StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap()
    }

    #[test]
    fn dot_output_is_well_formed() {
        let dot = fig3().to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("entry ->"));
        assert!(dot.contains("terminal"));
    }

    #[test]
    fn dot_omits_zero_edges() {
        let dot = fig3().to_dot();
        // The root's level-0 branch has a zero |1⟩ edge that must not appear.
        let edge_lines = dot.lines().filter(|l| l.contains("->")).count();
        // entry edge + 3 root edges + 2×(nonzero leaf edges: 1 each… the
        // three leaf nodes have 4 nonzero edges total across 3 nodes).
        assert!(edge_lines >= 6);
        assert!(!dot.contains("label=\"1: 0\""));
    }

    #[test]
    fn text_rendering_walks_all_branches() {
        let text = fig3().to_text();
        assert!(text.contains("root"));
        assert!(text.contains("[0]"));
        assert!(text.contains("[2]"));
    }

    #[test]
    fn summary_contains_metrics() {
        let dd = fig3();
        let s = render_summary(&dd);
        assert!(s.contains("dims=[3,2]"));
        assert!(s.contains("edges="));
    }
}
