//! Parallel within-job construction: subtree work-splitting with a
//! deterministic merge.
//!
//! The recursive splitting procedure of the paper's §4.1 is embarrassingly
//! parallel across sibling subtrees: the amplitude range cut at the top `k`
//! levels yields `∏ dims[0..k]` independent sub-ranges whose diagrams share
//! nothing *during* construction — all sharing happens when completed
//! subtrees are interned. The driver here exploits exactly that:
//!
//! 1. [`plan_split`] picks the smallest split depth `k` whose task count
//!    comfortably oversubscribes the requested thread count.
//! 2. A scoped worker pool builds each task's subtree into a thread-local
//!    scratch [`DdArena`] (drawn from a [`ScratchPool`], so long-lived
//!    workers don't re-grow hash maps per job). Work is handed out through
//!    an atomic counter — whichever thread is free takes the next task.
//! 3. The merge phase walks the upper levels in the *same* recursion order
//!    as the sequential builder, re-interning each task's local nodes into
//!    the caller's arena (bottom-up, in local creation order) exactly at the
//!    point the sequential build would have created them, then finishing the
//!    upper nodes with the ordinary normalization path.
//!
//! Step 3 is what makes the result deterministic regardless of which thread
//! built which task: node and weight interning order in the caller's arena
//! is identical to the sequential build, so first-representative-wins weight
//! canonicalization resolves identically and `to_amplitudes` of the result
//! is bit-identical to the sequential path (node ids included — creation
//! order is reproduced, not just structure).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

use mdq_num::radix::Dims;
use mdq_num::Complex;

use crate::arena::{ArenaOverflow, DdArena};
use crate::build::{BuildError, BuildOptions, Builder};
use crate::node::{Edge, NodeRef};
use crate::StateDd;

/// How a multi-threaded build fans out: split the amplitude range at the
/// top `depth` levels into `tasks` independent subtree tasks, served by
/// `threads` workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitPlan {
    /// Number of top levels consumed by the split (`1 ≤ depth < dims.len()`).
    pub depth: usize,
    /// Number of independent subtree tasks (`∏ dims[0..depth]`).
    pub tasks: usize,
    /// Worker threads actually used (`≤ tasks`).
    pub threads: usize,
}

/// Tasks per requested thread the planner aims for, so uneven subtree costs
/// still balance across the pool.
const OVERSPLIT: usize = 4;

/// Plans the subtree split for a `threads`-way build over `dims`, or `None`
/// when no useful split exists (single-qudit registers, or one thread).
#[must_use]
pub fn plan_split(dims: &Dims, threads: usize) -> Option<SplitPlan> {
    let threads = threads.max(1);
    if threads <= 1 || dims.len() < 2 {
        return None;
    }
    let target = threads.saturating_mul(OVERSPLIT);
    let mut tasks = 1usize;
    let mut depth = 0usize;
    while depth + 1 < dims.len() && tasks < target {
        tasks *= dims.dim(depth);
        depth += 1;
    }
    if tasks <= 1 {
        return None;
    }
    Some(SplitPlan {
        depth,
        tasks,
        threads: threads.min(tasks),
    })
}

/// A pool of reusable thread-local scratch arenas for multi-threaded builds.
///
/// Each subtree task of a parallel build borrows one arena (or creates a
/// fresh one when the pool runs dry) and returns it after the merge, so a
/// long-lived worker — the engine's `Preparer` — reuses grown hash-map
/// capacity across jobs instead of reallocating per task. Sequential builds
/// never touch the pool.
#[derive(Debug, Default)]
pub struct ScratchPool {
    arenas: Vec<DdArena>,
}

impl ScratchPool {
    /// Arenas retained at most; excess scratch from unusually wide builds is
    /// dropped rather than hoarded.
    const MAX: usize = 64;

    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled arenas currently available.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arenas.len()
    }

    /// Whether the pool holds no arenas.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arenas.is_empty()
    }

    fn put(&mut self, arena: DdArena) {
        if self.arenas.len() < Self::MAX {
            self.arenas.push(arena);
        }
    }
}

/// Per-task outcome: the subtree's upward edge plus its local arena
/// (`None` for tasks that built nothing — empty sparse branches).
type TaskResult = Result<(Edge, Option<DdArena>), ArenaOverflow>;

/// The dense parallel driver behind
/// [`StateDd::from_amplitudes_in_pooled`](StateDd::from_amplitudes_in_pooled).
/// The caller has validated the input and reset `arena`.
pub(crate) fn from_amplitudes_split(
    dims: &Dims,
    amplitudes: &[Complex],
    opts: BuildOptions,
    arena: DdArena,
    pool: &mut ScratchPool,
    plan: SplitPlan,
) -> Result<StateDd, BuildError> {
    let chunk = dims.space_size() / plan.tasks;
    let limit = arena.node_limit();
    let tol = opts.tolerance_value();
    let scratch = Mutex::new(std::mem::take(&mut pool.arenas));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    let mut results: Vec<Option<TaskResult>> = (0..plan.tasks).map(|_| None).collect();
    thread::scope(|scope| {
        for _ in 0..plan.threads {
            let tx = tx.clone();
            let next = &next;
            let scratch = &scratch;
            scope.spawn(move || loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= plan.tasks {
                    break;
                }
                let mut local = scratch
                    .lock()
                    .map(|mut v| v.pop())
                    .unwrap_or(None)
                    .unwrap_or_else(|| DdArena::with_node_limit(tol, limit));
                local.reset_for_tables(tol, limit, 1);
                let mut b = Builder {
                    dims,
                    opts,
                    arena: local,
                };
                let out = b
                    .build(plan.depth, &amplitudes[t * chunk..(t + 1) * chunk])
                    .map(|edge| (edge, Some(b.arena)));
                if tx.send((t, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (t, out) in rx {
            results[t] = Some(out);
        }
    });
    let leftover = scratch.into_inner().unwrap_or_else(|e| e.into_inner());
    finish_split(dims, opts, arena, pool, plan, results, leftover)
}

/// The sparse parallel driver behind
/// [`StateDd::from_sparse_in_pooled`](StateDd::from_sparse_in_pooled):
/// `dedup` is the validated, sorted, duplicate-summed support. Tasks are
/// flat-index ranges; empty ranges become zero edges without arena work,
/// exactly as in the sequential builder.
pub(crate) fn from_sparse_split(
    dims: &Dims,
    dedup: &[(usize, Complex)],
    opts: BuildOptions,
    arena: DdArena,
    pool: &mut ScratchPool,
    plan: SplitPlan,
) -> Result<StateDd, BuildError> {
    let chunk = dims.space_size() / plan.tasks;
    let strides = dims.strides();
    let limit = arena.node_limit();
    let tol = opts.tolerance_value();
    let mut parts: Vec<&[(usize, Complex)]> = Vec::with_capacity(plan.tasks);
    let mut rest = dedup;
    for t in 0..plan.tasks {
        let upper = (t + 1) * chunk;
        let split = rest.partition_point(|&(idx, _)| idx < upper);
        let (part, tail) = rest.split_at(split);
        parts.push(part);
        rest = tail;
    }
    let work: Vec<usize> = (0..plan.tasks).filter(|&t| !parts[t].is_empty()).collect();
    let mut results: Vec<Option<TaskResult>> = parts
        .iter()
        .map(|part| part.is_empty().then_some(Ok((Edge::ZERO, None))))
        .collect();
    let threads = plan.threads.min(work.len()).max(1);
    let scratch = Mutex::new(std::mem::take(&mut pool.arenas));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let scratch = &scratch;
            let work = &work;
            let parts = &parts;
            let strides = &strides;
            scope.spawn(move || loop {
                let w = next.fetch_add(1, Ordering::Relaxed);
                let Some(&t) = work.get(w) else { break };
                let mut local = scratch
                    .lock()
                    .map(|mut v| v.pop())
                    .unwrap_or(None)
                    .unwrap_or_else(|| DdArena::with_node_limit(tol, limit));
                local.reset_for_tables(tol, limit, 1);
                let mut b = Builder {
                    dims,
                    opts,
                    arena: local,
                };
                let out = b
                    .build_sparse(plan.depth, t * chunk, parts[t], strides)
                    .map(|edge| (edge, Some(b.arena)));
                if tx.send((t, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (t, out) in rx {
            results[t] = Some(out);
        }
    });
    let leftover = scratch.into_inner().unwrap_or_else(|e| e.into_inner());
    finish_split(dims, opts, arena, pool, plan, results, leftover)
}

/// The single-threaded merge phase shared by both drivers: assembles the
/// top `plan.depth` levels in sequential recursion order, merging each
/// task's local arena at the exact point the sequential build would have
/// created those nodes.
fn finish_split(
    dims: &Dims,
    opts: BuildOptions,
    arena: DdArena,
    pool: &mut ScratchPool,
    plan: SplitPlan,
    results: Vec<Option<TaskResult>>,
    leftover: Vec<DdArena>,
) -> Result<StateDd, BuildError> {
    // task_strides[level] = tasks spanned by one branch at `level`, i.e.
    // ∏ dims[level+1..depth].
    let mut task_strides = vec![1usize; plan.depth];
    for level in (0..plan.depth.saturating_sub(1)).rev() {
        task_strides[level] = task_strides[level + 1] * dims.dim(level + 1);
    }
    let mut merger = Merger {
        builder: Builder { dims, opts, arena },
        results,
        task_strides,
        depth: plan.depth,
        recycled: leftover,
    };
    let root = merger.assemble(0, 0);
    for scratch in merger.recycled.drain(..) {
        pool.put(scratch);
    }
    let root_edge = root?;
    debug_assert!(!root_edge.is_zero(opts.tolerance_value().value()));
    let root_weight = Complex::cis(root_edge.weight.arg());
    Ok(StateDd::from_parts(
        dims.clone(),
        merger.builder.arena,
        root_edge.target,
        root_weight,
        !opts.keeps_zero_subtrees(),
    ))
}

struct Merger<'a> {
    builder: Builder<'a>,
    results: Vec<Option<TaskResult>>,
    task_strides: Vec<usize>,
    depth: usize,
    recycled: Vec<DdArena>,
}

impl Merger<'_> {
    /// Rebuilds the top levels exactly as the sequential recursion would:
    /// at the split boundary the task's subtree is merged in; above it the
    /// ordinary `finish_node` normalization runs. Task errors surface at
    /// the same recursion position the sequential build would fail at.
    fn assemble(&mut self, level: usize, base: usize) -> Result<Edge, ArenaOverflow> {
        if level == self.depth {
            let (up, local) = self.results[base]
                .take()
                .expect("every subtree task produced a result")?;
            let Some(local) = local else {
                return Ok(up);
            };
            let edge = self.merge_subtree(up, &local)?;
            self.recycled.push(local);
            return Ok(edge);
        }
        let d = self.builder.dims.dim(level);
        let stride = self.task_strides[level];
        let mut edges = Vec::with_capacity(d);
        for k in 0..d {
            edges.push(self.assemble(level + 1, base + k * stride)?);
        }
        self.builder.finish_node(level, edges)
    }

    /// Re-interns a task's local nodes into the caller's arena in local
    /// creation order (children precede parents by the arena invariant),
    /// remapping successor references through the id map. Canonical builds
    /// intern (the local weights are already normalized); `keep_zero` tree
    /// builds copy every node unshared, preserving tree positions.
    fn merge_subtree(&mut self, up: Edge, local: &DdArena) -> Result<Edge, ArenaOverflow> {
        let keep_zero = self.builder.opts.keeps_zero_subtrees();
        let mut map: Vec<NodeRef> = Vec::with_capacity(local.len());
        for node in local.nodes() {
            let edges: Vec<Edge> = node
                .edges()
                .iter()
                .map(|e| Edge::new(e.weight, remap(e.target, &map)))
                .collect();
            let target = if keep_zero {
                self.builder.arena.alloc_unshared(node.level(), edges)?
            } else {
                self.builder.arena.intern(node.level(), edges)?
            };
            map.push(target);
        }
        Ok(Edge::new(up.weight, remap(up.target, &map)))
    }
}

fn remap(r: NodeRef, map: &[NodeRef]) -> NodeRef {
    match r {
        NodeRef::Terminal => NodeRef::Terminal,
        NodeRef::Node(id) => map[id.index()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdq_num::Tolerance;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    #[test]
    fn plan_split_needs_threads_and_levels() {
        assert_eq!(plan_split(&dims(&[2, 2]), 1), None);
        assert_eq!(plan_split(&dims(&[7]), 4), None);
    }

    #[test]
    fn plan_split_oversubscribes_threads() {
        let plan = plan_split(&dims(&[2, 2, 2, 2, 2, 2]), 4).unwrap();
        assert_eq!(plan.tasks, 16); // first prefix product ≥ 4 × OVERSPLIT
        assert_eq!(plan.depth, 4);
        assert_eq!(plan.threads, 4);
    }

    #[test]
    fn plan_split_caps_depth_below_register_length() {
        let plan = plan_split(&dims(&[2, 2]), 8).unwrap();
        assert_eq!(plan.depth, 1);
        assert_eq!(plan.tasks, 2);
        assert_eq!(plan.threads, 2);
    }

    fn bits(dd: &StateDd) -> Vec<(u64, u64)> {
        dd.to_amplitudes()
            .iter()
            .map(|a| (a.re.to_bits(), a.im.to_bits()))
            .collect()
    }

    #[test]
    fn parallel_dense_build_is_bit_identical_and_pool_recycles() {
        let d = dims(&[3, 4, 2, 3]);
        let amps: Vec<Complex> = (0..d.space_size())
            .map(|i| Complex::new((i as f64 * 0.731).sin(), (i as f64 * 0.413).cos()))
            .collect();
        let seq = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        let mut pool = ScratchPool::new();
        for threads in [2, 4] {
            let opts = BuildOptions::default().build_threads(threads);
            let par = StateDd::from_amplitudes_in_pooled(&d, &amps, opts, opts.arena(), &mut pool)
                .unwrap();
            assert_eq!(bits(&par), bits(&seq));
            assert_eq!(par.node_count(), seq.node_count());
            assert!(!pool.is_empty());
        }
    }

    #[test]
    fn parallel_sparse_build_is_bit_identical() {
        let d = dims(&[3, 4, 2, 3]);
        let entries: Vec<(Vec<usize>, Complex)> = vec![
            (vec![0, 0, 0, 0], Complex::real(0.5)),
            (vec![2, 3, 1, 2], Complex::new(0.0, -0.5)),
            (vec![1, 2, 0, 1], Complex::from_polar(0.5, 1.0)),
        ];
        let seq = StateDd::from_sparse(&d, &entries, BuildOptions::default()).unwrap();
        for threads in [2, 4] {
            let opts = BuildOptions::default().build_threads(threads);
            let par = StateDd::from_sparse(&d, &entries, opts).unwrap();
            assert_eq!(bits(&par), bits(&seq));
            assert_eq!(par.node_count(), seq.node_count());
        }
    }

    #[test]
    fn parallel_build_surfaces_node_limit() {
        let d = dims(&[2, 2, 2, 2]);
        let amps: Vec<Complex> = (0..16).map(|i| Complex::real(1.0 + i as f64)).collect();
        let opts = BuildOptions::default().build_threads(4).node_limit(2);
        let err = StateDd::from_amplitudes(&d, &amps, opts).unwrap_err();
        assert_eq!(err, BuildError::ArenaOverflow { limit: 2 });
    }

    #[test]
    fn parallel_build_with_explicit_shards_matches() {
        let d = dims(&[2, 3, 2, 2]);
        let amps: Vec<Complex> = (0..d.space_size())
            .map(|i| Complex::new(1.0 / (1.0 + i as f64), (i as f64).sqrt()))
            .collect();
        let seq = StateDd::from_amplitudes(&d, &amps, BuildOptions::default()).unwrap();
        let opts = BuildOptions::default()
            .build_threads(2)
            .table_shards(8)
            .tolerance(Tolerance::default());
        let par = StateDd::from_amplitudes(&d, &amps, opts).unwrap();
        assert_eq!(bits(&par), bits(&seq));
        assert_eq!(par.arena().table_shards(), 8);
    }
}
