//! The hash-consed node arena underlying every [`StateDd`].
//!
//! A [`DdArena`] owns the node storage of a diagram together with the two
//! canonicalization indices that make diagrams *reduced by construction*:
//!
//! * a tolerance-bucketed [`ShardedComplexTable`] assigning every edge
//!   weight a canonical id, and
//! * a [`ShardedUniqueTable`] hash-consing nodes by their structural
//!   signature (see the
//!   [`unique`](crate::unique) module). Both default to a single shard —
//!   bit-exactly the plain tables — and fan out only when a build opts
//!   into [`with_table_shards`](DdArena::with_table_shards).
//!
//! [`DdArena::intern`] applies the reduction rules of the paper's §4.3 on
//! the fly: weights within the tolerance of zero become explicit zero edges
//! to the terminal, a node whose edges are all zero collapses to the
//! terminal itself, and a node structurally identical (up to tolerance) to
//! an interned node is shared instead of allocated. Because children are
//! always interned before their parents, the arena's creation order is a
//! bottom-up topological order — the invariant every traversal in this
//! crate relies on.
//!
//! The unreduced trees of the paper's Table 1 (`keep_zero_subtrees`) are
//! built through [`DdArena::alloc_unshared`], which bypasses both indices so
//! that every tree position stays a distinct node.
//!
//! [`StateDd`]: crate::StateDd

use std::collections::HashMap;
use std::fmt;

use mdq_num::{Complex, ComplexTableStats, ShardedComplexTable, Tolerance};

use crate::node::{Edge, Node, NodeId, NodeRef};
use crate::unique::{NodeSignature, ShardedUniqueTable};

/// Error raised when an arena cannot hold another node.
///
/// Produced when interning would exceed the configured node limit (or the
/// hard `u32` index space). Surface layers convert this into
/// [`BuildError::ArenaOverflow`](crate::BuildError::ArenaOverflow) and
/// [`ApplyError::ArenaOverflow`](crate::ApplyError::ArenaOverflow) instead
/// of panicking mid-build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaOverflow {
    /// The node limit that was hit.
    pub limit: usize,
}

impl fmt::Display for ArenaOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decision-diagram arena is full ({} nodes)", self.limit)
    }
}

impl std::error::Error for ArenaOverflow {}

/// Hash-consed node store with on-the-fly reduction.
///
/// See the [module documentation](self) for the invariants. Each
/// [`StateDd`](crate::StateDd) owns one arena holding exactly the nodes of
/// its diagram; transformation pipelines (notably
/// [`StateDd::apply_circuit`](crate::StateDd::apply_circuit)) thread a
/// single arena through many operations and compact once at the end.
#[derive(Debug, Clone)]
pub struct DdArena {
    tolerance: Tolerance,
    node_limit: usize,
    nodes: Vec<Node>,
    unique: ShardedUniqueTable,
    weights: ShardedComplexTable,
}

impl DdArena {
    /// Creates an empty arena with the full `u32` index space available.
    #[must_use]
    pub fn new(tolerance: Tolerance) -> Self {
        Self::with_node_limit(tolerance, u32::MAX as usize)
    }

    /// Creates an empty arena that refuses to grow beyond `node_limit`
    /// nodes, surfacing [`ArenaOverflow`] instead of exhausting memory —
    /// a resource cap for service deployments.
    #[must_use]
    pub fn with_node_limit(tolerance: Tolerance, node_limit: usize) -> Self {
        Self::with_table_shards(tolerance, node_limit, 1)
    }

    /// Creates an empty arena whose unique and weight tables are fanned out
    /// over `table_shards` fingerprint-selected shards (rounded up to a
    /// power of two). One shard — the default everywhere — is bit-for-bit
    /// the unsharded behaviour; more shards spread hash-consing traffic for
    /// the parallel-build merge phase and large circuit applications.
    #[must_use]
    pub fn with_table_shards(tolerance: Tolerance, node_limit: usize, table_shards: usize) -> Self {
        DdArena {
            tolerance,
            node_limit: node_limit.min(u32::MAX as usize),
            nodes: Vec::new(),
            unique: ShardedUniqueTable::new(table_shards),
            weights: ShardedComplexTable::new(tolerance, table_shards),
        }
    }

    /// Number of shards the canonicalization tables are fanned out over.
    #[must_use]
    pub fn table_shards(&self) -> usize {
        self.unique.shard_count()
    }

    /// The tolerance used for zero tests and weight canonicalization.
    #[must_use]
    pub fn tolerance(&self) -> Tolerance {
        self.tolerance
    }

    /// The configured maximum node count.
    #[must_use]
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// Number of nodes currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All stored nodes in creation order (children precede parents).
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Access a node by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this arena.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of distinct canonical edge weights interned so far.
    #[must_use]
    pub fn distinct_weights(&self) -> usize {
        self.weights.len()
    }

    /// Usage counters of the weight table — the pressure this arena's
    /// workloads put on the canonical complex store, aggregated across all
    /// table shards. Counters are cumulative across [`DdArena::reset`] (and
    /// across shard-count changes), so a recycled per-worker arena reports
    /// the traffic of every job it served.
    #[must_use]
    pub fn weight_stats(&self) -> ComplexTableStats {
        self.weights.stats()
    }

    /// Empties the arena while retaining the allocated capacity of the node
    /// store and both canonicalization indices — the recycling path that
    /// lets one worker reuse a single arena across many preparation jobs
    /// instead of re-growing hash maps from scratch per request.
    ///
    /// The tolerance and node limit are unchanged; see [`DdArena::reset_for`]
    /// to reconfigure them at the same time.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.unique.clear();
        self.weights.clear();
    }

    /// [`DdArena::reset`] plus reconfiguration of the tolerance and node
    /// limit, for recycling an arena into a job with different numerical
    /// settings. The table shard count is kept as-is; see
    /// [`DdArena::reset_for_tables`] to change it too.
    pub fn reset_for(&mut self, tolerance: Tolerance, node_limit: usize) {
        let shards = self.table_shards();
        self.reset_for_tables(tolerance, node_limit, shards);
    }

    /// [`DdArena::reset_for`] plus reconfiguration of the table shard count.
    /// When the count changes, the shard vectors of both canonicalization
    /// indices are rebuilt at the new width (so a recycled per-worker arena
    /// can move between sequential and parallel jobs without leaking stale
    /// shards); when it doesn't, they are cleared in place keeping capacity.
    pub fn reset_for_tables(
        &mut self,
        tolerance: Tolerance,
        node_limit: usize,
        table_shards: usize,
    ) {
        self.tolerance = tolerance;
        self.node_limit = node_limit.min(u32::MAX as usize);
        self.nodes.clear();
        self.unique.configure(table_shards);
        self.weights.configure(tolerance, table_shards);
    }

    fn push(&mut self, node: Node) -> Result<NodeId, ArenaOverflow> {
        if self.nodes.len() >= self.node_limit {
            return Err(ArenaOverflow {
                limit: self.node_limit,
            });
        }
        let id = NodeId::try_new(self.nodes.len()).ok_or(ArenaOverflow {
            limit: self.node_limit,
        })?;
        self.nodes.push(node);
        Ok(id)
    }

    /// Interns a canonical node, applying the zero-edge and redundant-node
    /// rules: zero-ish weights become explicit zero edges, an all-zero node
    /// collapses to [`NodeRef::Terminal`], and a node structurally equal
    /// (within tolerance) to an existing one is shared.
    ///
    /// The edge weights are expected to be normalized already (this is the
    /// back end of [`DdArena::intern_normalized`]); callers interning
    /// already-normalized nodes — e.g. a reduction pass — may use it
    /// directly.
    ///
    /// # Errors
    ///
    /// Returns [`ArenaOverflow`] when the node limit is reached.
    pub fn intern(&mut self, level: usize, edges: Vec<Edge>) -> Result<NodeRef, ArenaOverflow> {
        let tol = self.tolerance.value();
        let mut canon: Vec<Edge> = Vec::with_capacity(edges.len());
        let mut parts: Vec<(u32, NodeRef)> = Vec::with_capacity(edges.len());
        let mut all_zero = true;
        for e in edges {
            if e.is_zero(tol) {
                let zero_id = self.weights.insert(Complex::ZERO);
                parts.push((zero_id.index() as u32, NodeRef::Terminal));
                canon.push(Edge::ZERO);
            } else {
                all_zero = false;
                let weight_id = self.weights.insert(e.weight);
                // Canonicalization may fold a borderline weight onto the
                // zero representative; treat it as a zero edge then.
                if self.weights.value(weight_id).is_zero(tol) {
                    canon.push(Edge::ZERO);
                    parts.push((weight_id.index() as u32, NodeRef::Terminal));
                    continue;
                }
                parts.push((weight_id.index() as u32, e.target));
                canon.push(e);
            }
        }
        if all_zero || canon.iter().all(|e| e.is_zero(tol)) {
            return Ok(NodeRef::Terminal);
        }
        let signature: NodeSignature = (level, parts);
        if let Some(existing) = self.unique.get(&signature) {
            return Ok(NodeRef::Node(existing));
        }
        let id = self.push(Node::new(level, canon))?;
        self.unique.insert(signature, id);
        Ok(NodeRef::Node(id))
    }

    /// Normalizes raw successor edges and interns the resulting canonical
    /// node, returning the upward edge: the norm of the raw weights and the
    /// phase of the first nonzero weight are pulled out of the node onto the
    /// returned edge weight, so structurally equal subtrees (up to a global
    /// factor) intern to the same node.
    ///
    /// An all-zero edge list yields [`Edge::ZERO`] without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`ArenaOverflow`] when the node limit is reached.
    pub fn intern_normalized(
        &mut self,
        level: usize,
        mut edges: Vec<Edge>,
    ) -> Result<Edge, ArenaOverflow> {
        let tol = self.tolerance.value();
        let norm_sqr: f64 = edges.iter().map(|e| e.weight.norm_sqr()).sum();
        let norm = norm_sqr.sqrt();
        if norm <= tol {
            return Ok(Edge::ZERO);
        }
        for e in &mut edges {
            e.weight = e.weight / norm;
        }
        let lead = edges.iter().find(|e| !e.is_zero(tol)).map(|e| e.weight);
        // Fast path for an already phase-free leading weight (the common
        // case when re-interning nodes that were canonical before an edit):
        // skips `arg`/`cis`/`from_polar` transcendentals entirely.
        if lead.is_none_or(|w| w.im == 0.0 && w.re > 0.0) {
            for e in &mut edges {
                if e.is_zero(tol) {
                    e.weight = Complex::ZERO;
                }
            }
            let target = self.intern(level, edges)?;
            if target.is_terminal() {
                return Ok(Edge::ZERO);
            }
            return Ok(Edge::new(Complex::real(norm), target));
        }
        let phase = lead.map_or(0.0, Complex::arg);
        let unphase = Complex::cis(-phase);
        for e in &mut edges {
            e.weight *= unphase;
            if e.is_zero(tol) {
                e.weight = Complex::ZERO;
            }
        }
        let target = self.intern(level, edges)?;
        if target.is_terminal() {
            // Numerically possible only for borderline norms; the subtree
            // carries no mass.
            return Ok(Edge::ZERO);
        }
        Ok(Edge::new(Complex::from_polar(norm, phase), target))
    }

    /// Allocates a node without hash-consing or zero collapsing — the
    /// Table-1 reproduction path, where every position of the unreduced
    /// tree must stay a distinct node (including all-zero subtrees).
    ///
    /// # Errors
    ///
    /// Returns [`ArenaOverflow`] when the node limit is reached.
    pub fn alloc_unshared(
        &mut self,
        level: usize,
        edges: Vec<Edge>,
    ) -> Result<NodeRef, ArenaOverflow> {
        Ok(NodeRef::Node(self.push(Node::new(level, edges))?))
    }
}

/// Memoization tables for the recursive diagram operations, reusable across
/// the instructions of a circuit so that one pipeline run allocates one set
/// of maps.
///
/// The caches key on exact weight bit patterns (operation intermediates are
/// instruction-specific), so they must be cleared between instructions via
/// [`ComputeCache::begin_op`]; clearing retains the allocated capacity.
#[derive(Debug, Default)]
pub struct ComputeCache {
    /// Transform memo of [`StateDd::apply`](crate::StateDd::apply):
    /// `(source node, pending-control index) → transformed edge`.
    pub(crate) rec: HashMap<(NodeId, usize), Edge>,
    /// Weighted-sum memo: sorted `(weight bits, target)` terms → summed edge.
    pub(crate) sum: HashMap<Vec<(u64, u64, NodeRef)>, Edge>,
}

impl ComputeCache {
    /// Creates empty caches.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears both memo tables (keeping capacity) ahead of a new operation.
    pub fn begin_op(&mut self) {
        self.rec.clear();
        self.sum.clear();
    }

    /// Clears only the per-instruction transform memo, keeping the
    /// weighted-sum memo. Sound *within* one circuit application on one
    /// (append-only) arena: sums are matrix-independent, so their entries
    /// stay valid across instructions — until a compaction rebuilds the
    /// arena, at which point the caller must [`ComputeCache::begin_op`].
    pub fn begin_instruction(&mut self) {
        self.rec.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tol() -> Tolerance {
        Tolerance::default()
    }

    fn c(re: f64) -> Complex {
        Complex::real(re)
    }

    #[test]
    fn interning_identical_nodes_shares_them() {
        let mut arena = DdArena::new(tol());
        let a = arena
            .intern(1, vec![Edge::new(c(1.0), NodeRef::Terminal), Edge::ZERO])
            .unwrap();
        let b = arena
            .intern(1, vec![Edge::new(c(1.0), NodeRef::Terminal), Edge::ZERO])
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn interning_within_tolerance_shares_nodes() {
        let mut arena = DdArena::new(tol());
        let a = arena
            .intern(0, vec![Edge::new(c(0.6), NodeRef::Terminal), Edge::ZERO])
            .unwrap();
        let b = arena
            .intern(
                0,
                vec![Edge::new(c(0.6 + 1e-12), NodeRef::Terminal), Edge::ZERO],
            )
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn all_zero_node_collapses_to_terminal() {
        let mut arena = DdArena::new(tol());
        let r = arena.intern(2, vec![Edge::ZERO; 3]).unwrap();
        assert!(r.is_terminal());
        assert!(arena.is_empty());
    }

    #[test]
    fn tiny_weights_become_zero_edges() {
        let mut arena = DdArena::new(tol());
        let r = arena
            .intern(
                0,
                vec![
                    Edge::new(c(1.0), NodeRef::Terminal),
                    Edge::new(c(1e-12), NodeRef::Terminal),
                ],
            )
            .unwrap();
        let id = r.id().unwrap();
        assert_eq!(arena.node(id).edges()[1], Edge::ZERO);
    }

    #[test]
    fn intern_normalized_pulls_norm_and_phase() {
        let mut arena = DdArena::new(tol());
        let up = arena
            .intern_normalized(
                0,
                vec![
                    Edge::new(Complex::real(-3.0), NodeRef::Terminal),
                    Edge::new(Complex::real(-4.0), NodeRef::Terminal),
                ],
            )
            .unwrap();
        assert!((up.weight.abs() - 5.0).abs() < 1e-12);
        let node = arena.node(up.target.id().unwrap());
        let s: f64 = node.edges().iter().map(|e| e.weight.norm_sqr()).sum();
        assert!((s - 1.0).abs() < 1e-12);
        // First nonzero weight has phase zero after the pull.
        assert!(node.edges()[0].weight.approx_eq(c(0.6), 1e-12));
    }

    #[test]
    fn intern_normalized_returns_zero_for_empty_mass() {
        let mut arena = DdArena::new(tol());
        let up = arena
            .intern_normalized(0, vec![Edge::ZERO, Edge::ZERO])
            .unwrap();
        assert_eq!(up, Edge::ZERO);
    }

    #[test]
    fn alloc_unshared_keeps_duplicates_distinct() {
        let mut arena = DdArena::new(tol());
        let edges = vec![Edge::new(c(1.0), NodeRef::Terminal), Edge::ZERO];
        let a = arena.alloc_unshared(0, edges.clone()).unwrap();
        let b = arena.alloc_unshared(0, edges).unwrap();
        assert_ne!(a, b);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn node_limit_surfaces_overflow() {
        let mut arena = DdArena::with_node_limit(tol(), 2);
        for k in 0..2 {
            arena
                .intern(
                    0,
                    vec![Edge::new(c(0.1 + k as f64), NodeRef::Terminal), Edge::ZERO],
                )
                .unwrap();
        }
        let err = arena
            .intern(0, vec![Edge::new(c(9.0), NodeRef::Terminal), Edge::ZERO])
            .unwrap_err();
        assert_eq!(err, ArenaOverflow { limit: 2 });
        // Re-interning an existing node still works at the limit.
        let ok = arena
            .intern(0, vec![Edge::new(c(0.1), NodeRef::Terminal), Edge::ZERO])
            .unwrap();
        assert!(ok.id().is_some());
        assert_eq!(
            arena.alloc_unshared(0, vec![Edge::ZERO]).unwrap_err(),
            ArenaOverflow { limit: 2 }
        );
    }

    #[test]
    fn reset_empties_arena_but_keeps_configuration() {
        let mut arena = DdArena::with_node_limit(tol(), 100);
        arena
            .intern(0, vec![Edge::new(c(0.7), NodeRef::Terminal), Edge::ZERO])
            .unwrap();
        assert_eq!(arena.len(), 1);
        arena.reset();
        assert!(arena.is_empty());
        assert_eq!(arena.node_limit(), 100);
        assert_eq!(arena.tolerance(), tol());
        // Interning after a reset starts a fresh id space.
        let r = arena
            .intern(0, vec![Edge::new(c(0.3), NodeRef::Terminal), Edge::ZERO])
            .unwrap();
        assert_eq!(r.id().unwrap().index(), 0);
        // Weight-table counters survive the reset (cumulative telemetry).
        assert!(arena.weight_stats().lookups >= 2);
    }

    #[test]
    fn reset_for_reconfigures_tolerance_and_limit() {
        let mut arena = DdArena::new(tol());
        arena
            .intern(0, vec![Edge::new(c(0.7), NodeRef::Terminal), Edge::ZERO])
            .unwrap();
        arena.reset_for(Tolerance::new(1e-3), 5);
        assert!(arena.is_empty());
        assert_eq!(arena.tolerance(), Tolerance::new(1e-3));
        assert_eq!(arena.node_limit(), 5);
        // The new tolerance governs weight canonicalization.
        let a = arena
            .intern(0, vec![Edge::new(c(0.5), NodeRef::Terminal), Edge::ZERO])
            .unwrap();
        let b = arena
            .intern(
                0,
                vec![Edge::new(c(0.5 + 1e-5), NodeRef::Terminal), Edge::ZERO],
            )
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reset_for_tables_resizes_shards_without_leaking() {
        let mut arena = DdArena::with_table_shards(tol(), 100, 4);
        assert_eq!(arena.table_shards(), 4);
        arena
            .intern(0, vec![Edge::new(c(0.7), NodeRef::Terminal), Edge::ZERO])
            .unwrap();
        assert!(arena.distinct_weights() > 0);
        // Shrink back to one shard: everything cleared, counters cumulative.
        arena.reset_for_tables(tol(), 100, 1);
        assert_eq!(arena.table_shards(), 1);
        assert!(arena.is_empty());
        assert_eq!(arena.distinct_weights(), 0);
        assert!(arena.weight_stats().lookups >= 2);
        // Fresh id space after the resize.
        let r = arena
            .intern(0, vec![Edge::new(c(0.3), NodeRef::Terminal), Edge::ZERO])
            .unwrap();
        assert_eq!(r.id().unwrap().index(), 0);
        // Same-count reset clears in place.
        arena.reset_for_tables(tol(), 100, 1);
        assert!(arena.is_empty());
        assert_eq!(arena.distinct_weights(), 0);
    }

    #[test]
    fn sharded_arena_interning_still_shares_within_tolerance() {
        let mut arena = DdArena::with_table_shards(tol(), 1000, 8);
        let a = arena
            .intern(0, vec![Edge::new(c(0.6), NodeRef::Terminal), Edge::ZERO])
            .unwrap();
        let b = arena
            .intern(
                0,
                vec![Edge::new(c(0.6 + 1e-12), NodeRef::Terminal), Edge::ZERO],
            )
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn compute_cache_clears_between_ops() {
        let mut cache = ComputeCache::new();
        cache.rec.insert((NodeId::new(0), 0), Edge::ZERO);
        cache.sum.insert(vec![], Edge::ZERO);
        cache.begin_op();
        assert!(cache.rec.is_empty());
        assert!(cache.sum.is_empty());
    }
}
