//! Amplitude queries, dense reconstruction, inner products, contributions,
//! and sampling.

use std::collections::HashMap;

use mdq_num::Complex;

use crate::node::NodeRef;
use crate::StateDd;

impl StateDd {
    /// The amplitude of the basis state given by mixed-radix `digits`
    /// (most significant first).
    ///
    /// # Panics
    ///
    /// Panics if the digit count or any digit is out of range for the
    /// register.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::{BuildOptions, StateDd};
    /// use mdq_num::{radix::Dims, Complex};
    ///
    /// let dims = Dims::new(vec![2, 2])?;
    /// let a = Complex::real(1.0 / 2.0_f64.sqrt());
    /// let dd = StateDd::from_amplitudes(
    ///     &dims,
    ///     &[a, Complex::ZERO, Complex::ZERO, a],
    ///     BuildOptions::default(),
    /// )?;
    /// assert!(dd.amplitude(&[1, 1]).approx_eq(a, 1e-12));
    /// assert!(dd.amplitude(&[0, 1]).is_zero(1e-12));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn amplitude(&self, digits: &[usize]) -> Complex {
        assert_eq!(
            digits.len(),
            self.dims.len(),
            "digit count {} does not match register length {}",
            digits.len(),
            self.dims.len()
        );
        let mut weight = self.root_weight;
        let mut at = self.root;
        for (level, &digit) in digits.iter().enumerate() {
            assert!(
                digit < self.dims.dim(level),
                "digit {digit} exceeds dimension {} at level {level}",
                self.dims.dim(level)
            );
            match at {
                NodeRef::Terminal => return Complex::ZERO,
                NodeRef::Node(id) => {
                    let edge = &self.node(id).edges()[digit];
                    weight *= edge.weight;
                    at = edge.target;
                }
            }
        }
        weight
    }

    /// Reconstructs the dense amplitude vector in mixed-radix index order.
    #[must_use]
    pub fn to_amplitudes(&self) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.dims.space_size()];
        self.fill(self.root, self.root_weight, 0, 0, &mut out);
        out
    }

    fn fill(&self, at: NodeRef, weight: Complex, level: usize, offset: usize, out: &mut [Complex]) {
        let tol = self.tolerance().value();
        if weight.is_zero(tol) {
            return;
        }
        match at {
            NodeRef::Terminal => {
                debug_assert_eq!(level, self.dims.len());
                out[offset] = weight;
            }
            NodeRef::Node(id) => {
                let stride: usize = (level + 1..self.dims.len())
                    .map(|l| self.dims.dim(l))
                    .product();
                for (k, edge) in self.node(id).edges().iter().enumerate() {
                    if !edge.is_zero(tol) {
                        self.fill(
                            edge.target,
                            weight * edge.weight,
                            level + 1,
                            offset + k * stride,
                            out,
                        );
                    }
                }
            }
        }
    }

    /// The inner product `⟨self|other⟩`, computed recursively with
    /// memoization on node pairs (linear in the product of diagram sizes in
    /// the worst case, but typically far cheaper on shared diagrams).
    ///
    /// # Panics
    ///
    /// Panics if the two diagrams are defined over different registers.
    #[must_use]
    pub fn inner_product(&self, other: &StateDd) -> Complex {
        assert_eq!(
            self.dims, other.dims,
            "inner product of states over different registers"
        );
        let mut memo: HashMap<(NodeRef, NodeRef), Complex> = HashMap::new();
        let ip = self.ip(self.root, other, other.root, &mut memo);
        self.root_weight.conj() * other.root_weight * ip
    }

    fn ip(
        &self,
        a: NodeRef,
        other: &StateDd,
        b: NodeRef,
        memo: &mut HashMap<(NodeRef, NodeRef), Complex>,
    ) -> Complex {
        match (a, b) {
            (NodeRef::Terminal, NodeRef::Terminal) => Complex::ONE,
            // A terminal against an internal node can only happen when one
            // side pruned a zero branch the other kept; the weight into this
            // recursion is zero in that case.
            (NodeRef::Terminal, _) | (_, NodeRef::Terminal) => Complex::ZERO,
            (NodeRef::Node(na), NodeRef::Node(nb)) => {
                if let Some(&v) = memo.get(&(a, b)) {
                    return v;
                }
                let tol = self.tolerance().value();
                let mut acc = Complex::ZERO;
                let ea = self.node(na).edges();
                let eb = other.node(nb).edges();
                debug_assert_eq!(ea.len(), eb.len());
                for (x, y) in ea.iter().zip(eb.iter()) {
                    if x.is_zero(tol) || y.is_zero(tol) {
                        continue;
                    }
                    let sub = self.ip(x.target, other, y.target, memo);
                    acc += x.weight.conj() * y.weight * sub;
                }
                memo.insert((a, b), acc);
                acc
            }
        }
    }

    /// Fidelity `|⟨self|other⟩|²` between the two represented states.
    ///
    /// # Panics
    ///
    /// Panics if the registers differ.
    #[must_use]
    pub fn fidelity(&self, other: &StateDd) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Per-node fidelity contributions, indexed like [`StateDd::nodes`].
    ///
    /// The contribution of a node is the total squared-magnitude of all
    /// amplitudes whose root-to-terminal path crosses the node (paper §4.3).
    /// With normalized nodes this equals the sum over incoming paths of the
    /// squared product of edge weights, accumulated top-down.
    #[must_use]
    pub fn contributions(&self) -> Vec<f64> {
        let mut contrib = vec![0.0; self.node_count()];
        if let NodeRef::Node(root) = self.root {
            contrib[root.index()] = self.root_weight.norm_sqr();
        }
        // Reverse creation order is top-down topological.
        for idx in (0..self.node_count()).rev() {
            let c = contrib[idx];
            if c == 0.0 {
                continue;
            }
            for edge in self.nodes()[idx].edges() {
                if let NodeRef::Node(child) = edge.target {
                    contrib[child.index()] += c * edge.weight.norm_sqr();
                }
            }
        }
        contrib
    }

    /// Samples a basis state (as digits) from the measurement distribution
    /// of the represented state.
    ///
    /// Walks the diagram once, choosing a successor at every node with
    /// probability equal to the squared magnitude of its weight. The caller
    /// supplies uniform random numbers in `[0, 1)` (e.g. a closure around
    /// `rand::Rng::gen`), keeping this crate free of an RNG dependency.
    pub fn sample(&self, mut uniform: impl FnMut() -> f64) -> Vec<usize> {
        let mut digits = Vec::with_capacity(self.dims.len());
        let mut at = self.root;
        while digits.len() < self.dims.len() {
            match at {
                NodeRef::Terminal => {
                    // Zero branch (possible only in malformed diagrams);
                    // default deterministically to level 0.
                    digits.push(0);
                }
                NodeRef::Node(id) => {
                    let node = self.node(id);
                    let mut x = uniform();
                    let mut chosen = node.dimension() - 1;
                    for (k, edge) in node.edges().iter().enumerate() {
                        let p = edge.weight.norm_sqr();
                        if x < p {
                            chosen = k;
                            break;
                        }
                        x -= p;
                    }
                    digits.push(chosen);
                    at = node.edges()[chosen].target;
                }
            }
        }
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildOptions;
    use mdq_num::radix::Dims;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn build(dims: &Dims, amps: &[Complex]) -> StateDd {
        StateDd::from_amplitudes(dims, amps, BuildOptions::default()).unwrap()
    }

    fn fig3_state() -> (Dims, Vec<Complex>) {
        // (|00⟩ − |11⟩ + |21⟩)/√3 on a qutrit-qubit register (paper Fig. 3).
        let d = dims(&[3, 2]);
        let a = 1.0 / 3.0_f64.sqrt();
        let mut amps = vec![Complex::ZERO; 6];
        amps[d.index_of(&[0, 0])] = Complex::real(a);
        amps[d.index_of(&[1, 1])] = Complex::real(-a);
        amps[d.index_of(&[2, 1])] = Complex::real(a);
        (d, amps)
    }

    #[test]
    fn amplitude_matches_input() {
        let (d, amps) = fig3_state();
        let dd = build(&d, &amps);
        for (i, want) in amps.iter().enumerate() {
            let got = dd.amplitude(&d.digits_of(i));
            assert!(got.approx_eq(*want, 1e-12), "index {i}: {got} vs {want}");
        }
    }

    #[test]
    fn to_amplitudes_round_trips() {
        let (d, amps) = fig3_state();
        let dd = build(&d, &amps);
        for (a, b) in amps.iter().zip(dd.to_amplitudes()) {
            assert!(a.approx_eq(b, 1e-12));
        }
    }

    #[test]
    fn self_fidelity_is_one() {
        let (d, amps) = fig3_state();
        let dd = build(&d, &amps);
        assert!((dd.fidelity(&dd) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let d = dims(&[2]);
        let a = build(&d, &[Complex::ONE, Complex::ZERO]);
        let b = build(&d, &[Complex::ZERO, Complex::ONE]);
        assert!(a.fidelity(&b) < 1e-15);
    }

    #[test]
    fn inner_product_matches_dense_computation() {
        let (d, amps1) = fig3_state();
        let inv6 = 1.0 / 6.0_f64.sqrt();
        let amps2: Vec<Complex> = (0..6).map(|_| Complex::real(inv6)).collect();
        let dd1 = build(&d, &amps1);
        let dd2 = build(&d, &amps2);
        let dense = mdq_num::inner_product(&amps1, &amps2);
        assert!(dd1.inner_product(&dd2).approx_eq(dense, 1e-12));
    }

    #[test]
    fn inner_product_works_across_pruned_and_full_trees() {
        let (d, amps) = fig3_state();
        let pruned = build(&d, &amps);
        let full =
            StateDd::from_amplitudes(&d, &amps, BuildOptions::default().keep_zero_subtrees(true))
                .unwrap();
        assert!((pruned.fidelity(&full) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different registers")]
    fn inner_product_panics_on_register_mismatch() {
        let a = build(&dims(&[2]), &[Complex::ONE, Complex::ZERO]);
        let b = build(&dims(&[3]), &[Complex::ONE, Complex::ZERO, Complex::ZERO]);
        let _ = a.inner_product(&b);
    }

    #[test]
    fn root_contribution_is_one() {
        let (d, amps) = fig3_state();
        let dd = build(&d, &amps);
        let contrib = dd.contributions();
        let root = dd.root().1.id().unwrap();
        assert!((contrib[root.index()] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contributions_match_subtree_mass() {
        let (d, amps) = fig3_state();
        let dd = build(&d, &amps);
        let contrib = dd.contributions();
        let root = dd.node(dd.root().1.id().unwrap());
        // Level-1 children carry 1/3 and 2/3 of the mass: |00⟩ under edge 0;
        // |11⟩,|21⟩ under edges 1 and 2, which the hash-consing build merges
        // into one shared node accumulating the full 2/3.
        let c0 = root.edges()[0].target.id().unwrap();
        assert!((contrib[c0.index()] - 1.0 / 3.0).abs() < 1e-12);
        let c1 = root.edges()[1].target.id().unwrap();
        let c2 = root.edges()[2].target.id().unwrap();
        assert_eq!(c1, c2, "identical subtrees are shared at build time");
        assert!((contrib[c1.index()] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn contributions_accumulate_on_shared_nodes() {
        let (d, amps) = fig3_state();
        let reduced = build(&d, &amps).reduce();
        let contrib = reduced.contributions();
        // In the reduced diagram the |1⟩-successor node is shared by the
        // level-0 edges 1 and 2; its contribution is the full 2/3.
        let per_level_mass: f64 = reduced
            .nodes()
            .iter()
            .zip(contrib.iter())
            .filter(|(n, _)| n.level() == 1)
            .map(|(_, c)| c)
            .sum();
        assert!((per_level_mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_follows_distribution() {
        let (d, amps) = fig3_state();
        let dd = build(&d, &amps);
        // First random value 0.1 < 1/3 picks level 0 at the root, then 0.0
        // picks edge 0 at the child: |00⟩.
        let mut seq = [0.1, 0.0].into_iter();
        assert_eq!(dd.sample(|| seq.next().unwrap()), vec![0, 0]);
        // 0.9 > 2/3 at the root picks level 2, whose child is |1⟩.
        let mut seq = [0.9, 0.5].into_iter();
        assert_eq!(dd.sample(|| seq.next().unwrap()), vec![2, 1]);
    }

    #[test]
    fn sampling_statistics_match_probabilities() {
        let (d, amps) = fig3_state();
        let dd = build(&d, &amps);
        // A simple LCG keeps the test deterministic without a rand dep.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut uniform = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut counts = [0usize; 6];
        let trials = 30_000;
        for _ in 0..trials {
            let digits = dd.sample(&mut uniform);
            counts[d.index_of(&digits)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let p = amps[i].norm_sqr();
            let freq = count as f64 / trials as f64;
            assert!(
                (freq - p).abs() < 0.02,
                "index {i}: frequency {freq} vs probability {p}"
            );
        }
    }
}
