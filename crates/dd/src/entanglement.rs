//! Entanglement structure read off the decision diagram.
//!
//! The paper motivates state preparation partly as a vehicle for "gaining
//! insights into the behavior of specific states … including aspects like
//! entanglement" (§1). The diagram makes one such insight almost free: for
//! the bipartition between levels `0..ℓ` and `ℓ..n`, the state's Schmidt
//! rank equals the rank of the unfolding matrix, and the number of distinct
//! nodes at level `ℓ` of the *reduced* diagram is exactly the number of
//! distinct (up to scale) column blocks of that unfolding — an upper bound
//! on the rank that is tight for states whose distinct subtrees are linearly
//! independent (all the benchmark families).

use std::collections::HashSet;

use crate::node::NodeRef;
use crate::StateDd;

impl StateDd {
    /// For every cut position `ℓ = 1..n`, the number of *distinct reachable
    /// subtrees* rooted at level `ℓ` (counting the distinct nonzero
    /// `(weight-class, target)` continuations), in the diagram as stored.
    ///
    /// On a shared diagram — which arena-built
    /// ([canonical](StateDd::is_canonical)) diagrams are by construction;
    /// Table-1 trees need [`StateDd::reduce`] first — this is the
    /// decision-diagram bound on the Schmidt rank across the cut
    /// `q_{top}…|…q_{bottom}`:
    /// 1 for product cuts, `k` for a GHZ state with `k` components, and at
    /// most `min(dim of either side)` in general.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdq_dd::{BuildOptions, StateDd};
    /// use mdq_num::{radix::Dims, Complex};
    ///
    /// // GHZ on two qutrits: Schmidt rank 3 across the middle cut.
    /// let dims = Dims::new(vec![3, 3])?;
    /// let a = Complex::real(1.0 / 3.0_f64.sqrt());
    /// let mut amps = vec![Complex::ZERO; 9];
    /// for k in 0..3 { amps[k * 3 + k] = a; }
    /// let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default())?.reduce();
    /// assert_eq!(dd.cut_ranks(), vec![3]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn cut_ranks(&self) -> Vec<usize> {
        let n = self.dims().len();
        let tol = self.tolerance().value();
        // Reachable nodes per level.
        let mut reachable: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        let mut stack: Vec<usize> = Vec::new();
        if let (_, NodeRef::Node(root)) = self.root() {
            stack.push(root.index());
            reachable[self.node(root).level()].insert(root.index());
        }
        let mut seen: HashSet<usize> = stack.iter().copied().collect();
        while let Some(idx) = stack.pop() {
            for edge in self.nodes()[idx].edges() {
                if edge.is_zero(tol) {
                    continue;
                }
                if let NodeRef::Node(child) = edge.target {
                    let c = child.index();
                    reachable[self.node(child).level()].insert(c);
                    if seen.insert(c) {
                        stack.push(c);
                    }
                }
            }
        }
        // Rank bound across the cut above level ℓ = number of distinct
        // reachable subtrees at level ℓ (ℓ = 1..n−1), plus the bottom cut
        // rank 1 is omitted (it is not a bipartition of two non-empty
        // parts unless n ≥ 2).
        (1..n).map(|l| reachable[l].len().max(1)).collect()
    }

    /// Whether every cut of the (reduced) diagram has rank bound 1 — a
    /// sufficient condition for the state being a full product state.
    #[must_use]
    pub fn is_product_bound(&self) -> bool {
        self.cut_ranks().iter().all(|&r| r == 1)
    }
}

#[cfg(test)]
mod tests {
    use crate::{BuildOptions, StateDd};
    use mdq_num::radix::Dims;
    use mdq_num::Complex;

    fn dims(v: &[usize]) -> Dims {
        Dims::new(v.to_vec()).unwrap()
    }

    fn reduced(d: &Dims, amps: &[Complex]) -> StateDd {
        StateDd::from_amplitudes(d, amps, BuildOptions::default())
            .unwrap()
            .reduce()
    }

    #[test]
    fn product_state_has_rank_one_everywhere() {
        let d = dims(&[3, 4, 2]);
        let n = d.space_size();
        let amps = vec![Complex::real(1.0 / (n as f64).sqrt()); n];
        let dd = reduced(&d, &amps);
        assert_eq!(dd.cut_ranks(), vec![1, 1]);
        assert!(dd.is_product_bound());
    }

    #[test]
    fn ghz_rank_equals_component_count() {
        // Mixed GHZ on [3,6,2] has min-dim = 2 components: rank 2 cuts.
        let d = dims(&[3, 6, 2]);
        let a = Complex::real(1.0 / 2.0_f64.sqrt());
        let mut amps = vec![Complex::ZERO; d.space_size()];
        amps[d.index_of(&[0, 0, 0])] = a;
        amps[d.index_of(&[1, 1, 1])] = a;
        let dd = reduced(&d, &amps);
        assert_eq!(dd.cut_ranks(), vec![2, 2]);
        assert!(!dd.is_product_bound());
    }

    #[test]
    fn w_state_has_rank_two_cuts() {
        // Every cut of a W state separates "excitation above" from
        // "excitation below": Schmidt rank 2.
        let d = dims(&[2, 2, 2, 2]);
        let a = Complex::real(0.5);
        let mut amps = vec![Complex::ZERO; 16];
        for q in 0..4 {
            amps[1 << (3 - q)] = a;
        }
        let dd = reduced(&d, &amps);
        assert_eq!(dd.cut_ranks(), vec![2, 2, 2]);
    }

    #[test]
    fn basis_state_is_product() {
        let d = dims(&[5, 3, 2]);
        let mut amps = vec![Complex::ZERO; d.space_size()];
        amps[d.index_of(&[4, 2, 1])] = Complex::ONE;
        let dd = reduced(&d, &amps);
        assert!(dd.is_product_bound());
    }

    #[test]
    fn partially_entangled_register() {
        // (|00⟩ + |11⟩)/√2 ⊗ |+⟩: entangled across the first cut, product
        // across the second.
        let d = dims(&[2, 2, 2]);
        let h = Complex::real(0.5);
        let mut amps = vec![Complex::ZERO; 8];
        amps[d.index_of(&[0, 0, 0])] = h;
        amps[d.index_of(&[0, 0, 1])] = h;
        amps[d.index_of(&[1, 1, 0])] = h;
        amps[d.index_of(&[1, 1, 1])] = h;
        let dd = reduced(&d, &amps);
        assert_eq!(dd.cut_ranks(), vec![2, 1]);
    }

    #[test]
    fn single_qudit_has_no_cuts() {
        let d = dims(&[4]);
        let amps = vec![Complex::real(0.5); 4];
        let dd = reduced(&d, &amps);
        assert!(dd.cut_ranks().is_empty());
    }
}
