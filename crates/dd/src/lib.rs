//! Edge-weighted decision diagrams with a variable number of successors for
//! mixed-dimensional quantum states.
//!
//! This crate implements the data structure at the heart of
//! *"Mixed-Dimensional Qudit State Preparation Using Edge-Weighted Decision
//! Diagrams"* (Mato, Hillmich, Wille — DAC 2024): a rooted directed acyclic
//! graph whose levels correspond to qudits, whose nodes have as many
//! successor edges as the local dimension of their qudit, and whose complex
//! edge weights multiply along a root-to-terminal path to the amplitude of
//! the corresponding basis state.
//!
//! The main type is [`StateDd`]. It supports:
//!
//! * construction from a dense amplitude vector with bottom-up
//!   normalization ([`StateDd::from_amplitudes`]), either keeping zero
//!   branches (the paper's unreduced tree whose edge count is the "Nodes"
//!   column of Table 1) or pruning them;
//! * amplitude queries and reconstruction of the dense vector;
//! * the evaluation metrics of the paper (edge count, node count, distinct
//!   complex values);
//! * fidelity-driven **approximation** ([`StateDd::approximate`]), the
//!   qudit generalization of Hillmich et al. (TQC 2022);
//! * **reduction** ([`StateDd::reduce`]): hash-consing of identical subtrees
//!   into shared nodes, enabling the tensor-product ("product node")
//!   detection that lets the synthesizer drop control qudits;
//! * fidelity and inner products between diagrams, sampling, and DOT export.
//!
//! # Examples
//!
//! ```
//! use mdq_dd::{BuildOptions, StateDd};
//! use mdq_num::{radix::Dims, Complex};
//!
//! // The qutrit-qubit state of the paper's Figure 3: (|00⟩ − |11⟩ + |21⟩)/√3.
//! let dims = Dims::new(vec![3, 2])?;
//! let a = 1.0 / 3.0_f64.sqrt();
//! let mut amps = vec![Complex::ZERO; 6];
//! amps[dims.index_of(&[0, 0])] = Complex::real(a);
//! amps[dims.index_of(&[1, 1])] = Complex::real(-a);
//! amps[dims.index_of(&[2, 1])] = Complex::real(a);
//!
//! let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default())?;
//! assert!(dd.amplitude(&[1, 1]).approx_eq(Complex::real(-a), 1e-12));
//!
//! // The reduced diagram shares the identical |1⟩ successors of levels 1 and 2.
//! let reduced = dd.reduce();
//! assert!(reduced.node_count() < dims.full_tree_node_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod approx;
mod build;
mod dot;
mod entanglement;
mod metrics;
mod node;
mod query;
mod reduce;

pub use apply::ApplyError;
pub use approx::{ApproxError, Approximation};
pub use build::{BuildError, BuildOptions};
pub use dot::render_summary;
pub use metrics::DdMetrics;
pub use node::{Edge, Node, NodeId, NodeRef};

use mdq_num::radix::Dims;
use mdq_num::{Complex, Tolerance};

/// An edge-weighted decision diagram representing a pure quantum state of a
/// mixed-dimensional qudit register.
///
/// Level 0 is the most-significant qudit (the root level, `q_{n−1}` in the
/// paper); level `n−1` is the least significant. A node at level `ℓ` has
/// exactly `dims[ℓ]` successor edges. Zero-weight edges either point to the
/// terminal (pruned form) or to an all-zero subtree (unreduced form, used to
/// reproduce the paper's structural "Nodes" metric).
///
/// Instances are produced by [`StateDd::from_amplitudes`] and transformed by
/// [`StateDd::prune_zero_subtrees`], [`StateDd::reduce`] and
/// [`StateDd::approximate`]; all transformations return new diagrams.
#[derive(Debug, Clone)]
pub struct StateDd {
    dims: Dims,
    tolerance: Tolerance,
    nodes: Vec<Node>,
    root: NodeRef,
    root_weight: Complex,
}

impl StateDd {
    /// The register layout the diagram is defined over.
    #[must_use]
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// The tolerance used for zero tests and weight canonicalization.
    #[must_use]
    pub fn tolerance(&self) -> Tolerance {
        self.tolerance
    }

    /// The incoming edge of the root node.
    ///
    /// Its weight is a unit-magnitude global phase for a normalized state.
    #[must_use]
    pub fn root(&self) -> (Complex, NodeRef) {
        (self.root_weight, self.root)
    }

    /// Access a node by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this diagram.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes of the diagram, in bottom-up creation order (children come
    /// before their parents, so iterating in reverse is a valid top-down
    /// topological order).
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mdq_num::fidelity;
    use proptest::prelude::*;

    fn arb_dims() -> impl Strategy<Value = Dims> {
        proptest::collection::vec(2usize..5, 1..4).prop_map(|v| Dims::new(v).unwrap())
    }

    fn arb_state(dims: &Dims) -> impl Strategy<Value = Vec<Complex>> {
        let n = dims.space_size();
        proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n..=n).prop_filter_map(
            "state must have nonzero norm",
            |parts| {
                let v: Vec<Complex> = parts
                    .into_iter()
                    .map(|(re, im)| Complex::new(re, im))
                    .collect();
                let norm = mdq_num::norm(&v);
                (norm > 1e-6).then(|| v.iter().map(|a| *a / norm).collect::<Vec<_>>())
            },
        )
    }

    fn arb_dims_and_state() -> impl Strategy<Value = (Dims, Vec<Complex>)> {
        arb_dims().prop_flat_map(|d| {
            let s = arb_state(&d);
            (Just(d), s)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_round_trip_preserves_amplitudes((dims, amps) in arb_dims_and_state()) {
            let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
            let back = dd.to_amplitudes();
            prop_assert!(fidelity(&amps, &back) > 1.0 - 1e-9);
            for (a, b) in amps.iter().zip(back.iter()) {
                prop_assert!(a.approx_eq(*b, 1e-7));
            }
        }

        #[test]
        fn prop_reduce_preserves_amplitudes((dims, amps) in arb_dims_and_state()) {
            let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
            let reduced = dd.reduce();
            for (a, b) in amps.iter().zip(reduced.to_amplitudes().iter()) {
                prop_assert!(a.approx_eq(*b, 1e-7));
            }
            prop_assert!(reduced.node_count() <= dd.node_count());
        }

        #[test]
        fn prop_normalization_invariant((dims, amps) in arb_dims_and_state()) {
            let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
            for node in dd.nodes() {
                let sum: f64 = node.edges().iter().map(|e| e.weight.norm_sqr()).sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "node norm {}", sum);
            }
            prop_assert!((dd.root().0.abs() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_approximation_meets_fidelity_budget(
            (dims, amps) in arb_dims_and_state(),
            budget in 0.0..0.3f64,
        ) {
            let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
            let approx = dd.approximate(budget).unwrap();
            let out = approx.dd.to_amplitudes();
            let f = fidelity(&amps, &out);
            prop_assert!(f >= 1.0 - budget - 1e-9, "fidelity {} below 1-{}", f, budget);
            prop_assert!(approx.dd.edge_count() <= dd.edge_count());
        }

        #[test]
        fn prop_contributions_sum_to_one_per_level((dims, amps) in arb_dims_and_state()) {
            let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
            let contrib = dd.contributions();
            let mut per_level = vec![0.0; dims.len()];
            for (node, c) in dd.nodes().iter().zip(contrib.iter()) {
                per_level[node.level()] += c;
            }
            for (level, total) in per_level.iter().enumerate() {
                // Levels below pruned-to-terminal zero edges may miss mass,
                // but a fully dense random state covers every level.
                prop_assert!(*total <= 1.0 + 1e-9, "level {} mass {}", level, total);
            }
        }
    }
}
