//! Edge-weighted decision diagrams with a variable number of successors for
//! mixed-dimensional quantum states.
//!
//! This crate implements the data structure at the heart of
//! *"Mixed-Dimensional Qudit State Preparation Using Edge-Weighted Decision
//! Diagrams"* (Mato, Hillmich, Wille — DAC 2024): a rooted directed acyclic
//! graph whose levels correspond to qudits, whose nodes have as many
//! successor edges as the local dimension of their qudit, and whose complex
//! edge weights multiply along a root-to-terminal path to the amplitude of
//! the corresponding basis state.
//!
//! The main type is [`StateDd`]. Every diagram lives in a hash-consed
//! [`DdArena`]: a central unique table (see [`unique`]) canonicalizes edge
//! weights through a tolerance-bucketed
//! [`ComplexTable`](mdq_num::ComplexTable) and shares structurally
//! identical subtrees at intern time, so diagrams produced by
//! [`StateDd::from_amplitudes`], [`StateDd::from_sparse`],
//! [`StateDd::ground`], [`StateDd::apply`] and [`StateDd::approximate`] are
//! **canonical by construction** — [`StateDd::reduce`] on them is a
//! structural no-op. The only exception is the explicit
//! [`keep_zero_subtrees`](BuildOptions::keep_zero_subtrees) path, which
//! reproduces the paper's unreduced Table-1 trees with every node distinct
//! (reduction then performs real sharing).
//!
//! [`StateDd`] supports:
//!
//! * construction from a dense amplitude vector with bottom-up
//!   normalization ([`StateDd::from_amplitudes`]) or from a sparse
//!   `(digits, amplitude)` support list ([`StateDd::from_sparse`]) whose
//!   cost is linear in the support size, never the Hilbert-space size;
//! * amplitude queries and reconstruction of the dense vector;
//! * the evaluation metrics of the paper (edge count, node count, distinct
//!   complex values);
//! * fidelity-driven **approximation** ([`StateDd::approximate`]), the
//!   qudit generalization of Hillmich et al. (TQC 2022);
//! * **reduction** ([`StateDd::reduce`]): a canonicity assertion on
//!   arena-built diagrams, a real hash-consing pass on Table-1 trees;
//! * circuit application ([`StateDd::apply_circuit`]) that threads one
//!   arena and one [`ComputeCache`] through every instruction;
//! * fidelity and inner products between diagrams, sampling, and DOT export.
//!
//! # Examples
//!
//! ```
//! use mdq_dd::{BuildOptions, StateDd};
//! use mdq_num::{radix::Dims, Complex};
//!
//! // The qutrit-qubit state of the paper's Figure 3: (|00⟩ − |11⟩ + |21⟩)/√3.
//! let dims = Dims::new(vec![3, 2])?;
//! let a = 1.0 / 3.0_f64.sqrt();
//! let mut amps = vec![Complex::ZERO; 6];
//! amps[dims.index_of(&[0, 0])] = Complex::real(a);
//! amps[dims.index_of(&[1, 1])] = Complex::real(-a);
//! amps[dims.index_of(&[2, 1])] = Complex::real(a);
//!
//! let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default())?;
//! assert!(dd.amplitude(&[1, 1]).approx_eq(Complex::real(-a), 1e-12));
//!
//! // The identical |1⟩ successors are shared at build time already…
//! assert!(dd.node_count() < dims.full_tree_node_count());
//! // …so reduction has nothing left to do.
//! assert_eq!(dd.reduce().node_count(), dd.node_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod approx;
pub mod arena;
mod build;
mod dot;
mod entanglement;
mod metrics;
mod node;
pub mod par;
mod query;
mod reduce;
pub mod unique;

pub use apply::ApplyError;
pub use approx::{ApproxError, Approximation};
pub use arena::{ArenaOverflow, ComputeCache, DdArena};
pub use build::{BuildError, BuildOptions};
pub use dot::render_summary;
pub use metrics::DdMetrics;
pub use node::{Edge, Node, NodeId, NodeRef};
pub use par::{plan_split, ScratchPool, SplitPlan};

use mdq_num::radix::Dims;
use mdq_num::{Complex, Tolerance};

// Compile-time Send/Sync audit: diagrams and their arenas cross worker
// threads in the batch-preparation engine (`mdq-engine`), so none of these
// types may silently grow a non-thread-safe field (Rc, RefCell, raw
// pointer) without breaking this build.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<DdArena>();
    assert_send_sync::<ComputeCache>();
    assert_send_sync::<unique::UniqueTable>();
    assert_send_sync::<unique::ShardedUniqueTable>();
    assert_send_sync::<mdq_num::ShardedComplexTable>();
    assert_send_sync::<ScratchPool>();
    assert_send_sync::<StateDd>();
    assert_send_sync::<Node>();
    assert_send_sync::<Edge>();
    assert_send_sync::<NodeRef>();
};

/// An edge-weighted decision diagram representing a pure quantum state of a
/// mixed-dimensional qudit register.
///
/// Level 0 is the most-significant qudit (the root level, `q_{n−1}` in the
/// paper); level `n−1` is the least significant. A node at level `ℓ` has
/// exactly `dims[ℓ]` successor edges. Zero-weight edges either point to the
/// terminal (pruned form) or to an all-zero subtree (unreduced form, used to
/// reproduce the paper's structural "Nodes" metric).
///
/// Instances are produced by [`StateDd::from_amplitudes`] and transformed by
/// [`StateDd::prune_zero_subtrees`], [`StateDd::reduce`] and
/// [`StateDd::approximate`]; all transformations return new diagrams. The
/// node storage is a hash-consed [`DdArena`], so every diagram except the
/// explicit `keep_zero_subtrees` trees is canonical (maximally shared) by
/// construction.
#[derive(Debug, Clone)]
pub struct StateDd {
    dims: Dims,
    arena: DdArena,
    root: NodeRef,
    root_weight: Complex,
    /// Whether the diagram was built through the hash-consing intern path
    /// (true) or as an unshared Table-1 tree (false).
    canonical: bool,
}

impl StateDd {
    /// The register layout the diagram is defined over.
    #[must_use]
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// The tolerance used for zero tests and weight canonicalization.
    #[must_use]
    pub fn tolerance(&self) -> Tolerance {
        self.arena.tolerance()
    }

    /// The incoming edge of the root node.
    ///
    /// Its weight is a unit-magnitude global phase for a normalized state.
    #[must_use]
    pub fn root(&self) -> (Complex, NodeRef) {
        (self.root_weight, self.root)
    }

    /// Access a node by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this diagram.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        self.arena.node(id)
    }

    /// All nodes of the diagram, in bottom-up creation order (children come
    /// before their parents, so iterating in reverse is a valid top-down
    /// topological order).
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        self.arena.nodes()
    }

    /// The arena holding this diagram's nodes and canonicalization tables.
    #[must_use]
    pub fn arena(&self) -> &DdArena {
        &self.arena
    }

    /// Number of nodes reachable from the root. Equals
    /// [`StateDd::node_count`] on a compacted diagram; on an uncompacted
    /// one (e.g. the result of [`StateDd::apply_circuit_consuming`]) it
    /// counts only the live diagram, not superseded arena garbage.
    #[must_use]
    pub fn live_node_count(&self) -> usize {
        let mut reachable = vec![false; self.arena.len()];
        self.mark_reachable(&mut reachable);
        reachable.iter().filter(|&&r| r).count()
    }

    /// Consumes the diagram and returns its arena, so a worker can
    /// [`reset`](DdArena::reset) and reuse the grown node store and
    /// canonicalization indices for the next job instead of reallocating
    /// them per request.
    #[must_use]
    pub fn into_arena(self) -> DdArena {
        self.arena
    }

    /// Whether the diagram was built through the hash-consing intern path
    /// and is therefore canonical (maximally shared, no all-zero nodes) by
    /// construction. False only for the
    /// [`keep_zero_subtrees`](BuildOptions::keep_zero_subtrees) Table-1
    /// trees; [`StateDd::reduce`] turns those into canonical diagrams.
    #[must_use]
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    /// Internal constructor shared by every producer.
    pub(crate) fn from_parts(
        dims: Dims,
        arena: DdArena,
        root: NodeRef,
        root_weight: Complex,
        canonical: bool,
    ) -> Self {
        StateDd {
            dims,
            arena,
            root,
            root_weight,
            canonical,
        }
    }

    /// Re-interns every selected node into `arena` bottom-up, remapping
    /// edge targets through the returned per-index memo (zero edges become
    /// [`Edge::ZERO`]). The shared core of [`StateDd::reduce`],
    /// [`StateDd::check_canonical`] and [`StateDd::compacted`]; indices for
    /// which `keep` returns false are skipped and stay `None` in the memo.
    ///
    /// # Panics
    ///
    /// Panics if `arena` cannot hold the re-interned nodes, which cannot
    /// happen when its node limit is at least the source arena's.
    pub(crate) fn reintern_into(
        &self,
        arena: &mut DdArena,
        keep: impl Fn(usize) -> bool,
    ) -> Vec<Option<NodeRef>> {
        let tol = self.tolerance().value();
        let mut memo: Vec<Option<NodeRef>> = vec![None; self.arena.len()];
        for (idx, node) in self.arena.nodes().iter().enumerate() {
            if !keep(idx) {
                continue;
            }
            let edges: Vec<Edge> = node
                .edges()
                .iter()
                .map(|e| {
                    if e.is_zero(tol) {
                        Edge::ZERO
                    } else {
                        let target = match e.target {
                            NodeRef::Terminal => NodeRef::Terminal,
                            NodeRef::Node(id) => {
                                memo[id.index()].expect("children precede parents")
                            }
                        };
                        Edge::new(e.weight, target)
                    }
                })
                .collect();
            memo[idx] = Some(
                arena
                    .intern(node.level(), edges)
                    .expect("re-interning never exceeds the source arena size"),
            );
        }
        memo
    }

    /// Rebuilds the diagram into a minimal arena holding exactly the nodes
    /// reachable from the root, preserving bottom-up order. Used by
    /// [`StateDd::apply_circuit`] after threading one arena through a whole
    /// circuit; a no-op (by move) when the arena is already minimal.
    #[must_use]
    pub(crate) fn compacted(self) -> StateDd {
        let mut reachable = vec![false; self.arena.len()];
        self.mark_reachable(&mut reachable);
        if reachable.iter().all(|&r| r) {
            return self;
        }
        let mut arena = DdArena::with_node_limit(self.tolerance(), self.arena.node_limit());
        let memo = self.reintern_into(&mut arena, |idx| reachable[idx]);
        let root = match self.root {
            NodeRef::Terminal => NodeRef::Terminal,
            NodeRef::Node(id) => memo[id.index()].expect("root is reachable"),
        };
        StateDd::from_parts(self.dims, arena, root, self.root_weight, true)
    }

    fn mark_reachable(&self, reachable: &mut [bool]) {
        let tol = self.tolerance().value();
        let mut stack: Vec<NodeId> = Vec::new();
        if let NodeRef::Node(root) = self.root {
            if !reachable[root.index()] {
                reachable[root.index()] = true;
                stack.push(root);
            }
        }
        while let Some(id) = stack.pop() {
            for edge in self.arena.node(id).edges() {
                if edge.is_zero(tol) {
                    continue;
                }
                if let NodeRef::Node(child) = edge.target {
                    if !reachable[child.index()] {
                        reachable[child.index()] = true;
                        stack.push(child);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mdq_num::fidelity;
    use proptest::prelude::*;

    fn arb_dims() -> impl Strategy<Value = Dims> {
        proptest::collection::vec(2usize..5, 1..4).prop_map(|v| Dims::new(v).unwrap())
    }

    fn arb_state(dims: &Dims) -> impl Strategy<Value = Vec<Complex>> {
        let n = dims.space_size();
        proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), n..=n).prop_filter_map(
            "state must have nonzero norm",
            |parts| {
                let v: Vec<Complex> = parts
                    .into_iter()
                    .map(|(re, im)| Complex::new(re, im))
                    .collect();
                let norm = mdq_num::norm(&v);
                (norm > 1e-6).then(|| v.iter().map(|a| *a / norm).collect::<Vec<_>>())
            },
        )
    }

    fn arb_dims_and_state() -> impl Strategy<Value = (Dims, Vec<Complex>)> {
        arb_dims().prop_flat_map(|d| {
            let s = arb_state(&d);
            (Just(d), s)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_round_trip_preserves_amplitudes((dims, amps) in arb_dims_and_state()) {
            let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
            let back = dd.to_amplitudes();
            prop_assert!(fidelity(&amps, &back) > 1.0 - 1e-9);
            for (a, b) in amps.iter().zip(back.iter()) {
                prop_assert!(a.approx_eq(*b, 1e-7));
            }
        }

        #[test]
        fn prop_reduce_preserves_amplitudes((dims, amps) in arb_dims_and_state()) {
            let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
            let reduced = dd.reduce();
            for (a, b) in amps.iter().zip(reduced.to_amplitudes().iter()) {
                prop_assert!(a.approx_eq(*b, 1e-7));
            }
            prop_assert!(reduced.node_count() <= dd.node_count());
        }

        #[test]
        fn prop_normalization_invariant((dims, amps) in arb_dims_and_state()) {
            let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
            for node in dd.nodes() {
                let sum: f64 = node.edges().iter().map(|e| e.weight.norm_sqr()).sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "node norm {}", sum);
            }
            prop_assert!((dd.root().0.abs() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_approximation_meets_fidelity_budget(
            (dims, amps) in arb_dims_and_state(),
            budget in 0.0..0.3f64,
        ) {
            let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
            let approx = dd.approximate(budget).unwrap();
            let out = approx.dd.to_amplitudes();
            let f = fidelity(&amps, &out);
            prop_assert!(f >= 1.0 - budget - 1e-9, "fidelity {} below 1-{}", f, budget);
            prop_assert!(approx.dd.edge_count() <= dd.edge_count());
        }

        #[test]
        fn prop_contributions_sum_to_one_per_level((dims, amps) in arb_dims_and_state()) {
            let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default()).unwrap();
            let contrib = dd.contributions();
            let mut per_level = vec![0.0; dims.len()];
            for (node, c) in dd.nodes().iter().zip(contrib.iter()) {
                per_level[node.level()] += c;
            }
            for (level, total) in per_level.iter().enumerate() {
                // Levels below pruned-to-terminal zero edges may miss mass,
                // but a fully dense random state covers every level.
                prop_assert!(*total <= 1.0 + 1e-9, "level {} mass {}", level, total);
            }
        }
    }
}
