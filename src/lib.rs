//! # mdq — Mixed-Dimensional Qudit State Preparation
//!
//! A Rust reproduction of *"Mixed-Dimensional Qudit State Preparation Using
//! Edge-Weighted Decision Diagrams"* (Mato, Hillmich, Wille — DAC 2024),
//! including every substrate the paper relies on:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`num`] | complex arithmetic, tolerance tables, mixed-radix utilities |
//! | [`dd`] | edge-weighted decision diagrams with variable successor counts |
//! | [`circuit`] | mixed-dimensional circuit IR, passes, transpilation |
//! | [`sim`] | dense mixed-radix state-vector simulator |
//! | [`states`] | benchmark state generators (GHZ, W, embedded W, random, …) |
//! | [`core`] | the synthesis algorithm and the three-step pipeline |
//! | [`engine`] | persistent preparation service: non-blocking submission, size-aware scheduling, warm worker arenas, LRU-bounded circuit cache, bounded admission control, replay-verification mode, wire protocol |
//! | [`router`] | sharded multi-tenant serving front-end: consistent-hash routing over engine shards, per-tenant quotas, warm shard snapshots |
//! | [`transport`] | std-only network serving tier: TCP/unix-socket `WireServer` over an engine or router backend, blocking `WireClient` with retry/backoff, deterministic fault injection for tests |
//!
//! This facade re-exports all of them; depend on the individual crates for a
//! narrower dependency surface.
//!
//! # Quickstart
//!
//! Prepare a two-qutrit GHZ state (the paper's Figure 1) and verify it:
//!
//! ```
//! use mdq::core::{prepare, PrepareOptions};
//! use mdq::num::radix::Dims;
//! use mdq::sim::StateVector;
//! use mdq::states::ghz;
//!
//! let dims = Dims::new(vec![3, 3])?;
//! let target = ghz(&dims);
//! let result = prepare(&dims, &target, PrepareOptions::exact())?;
//!
//! let mut state = StateVector::ground(dims);
//! state.apply_circuit(&result.circuit);
//! assert!(state.fidelity_with_amplitudes(&target) > 1.0 - 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! For serving request *streams*, use the persistent engine service
//! instead of per-call `prepare`:
//!
//! ```
//! use mdq::engine::{EngineConfig, EngineService, PrepareRequest, Priority};
//! use mdq::core::PrepareOptions;
//! use mdq::num::radix::Dims;
//! use mdq::states::ghz;
//!
//! let dims = Dims::new(vec![3, 3])?;
//! let service = EngineService::new(EngineConfig::default().with_workers(2));
//! let handle = service.submit(
//!     PrepareRequest::dense(dims.clone(), ghz(&dims), PrepareOptions::exact())
//!         .with_priority(Priority::High),
//! );
//! assert!(!handle.wait()?.circuit.is_empty());
//! service.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mdq_circuit as circuit;
pub use mdq_core as core;
pub use mdq_dd as dd;
pub use mdq_engine as engine;
pub use mdq_num as num;
pub use mdq_router as router;
pub use mdq_sim as sim;
pub use mdq_states as states;
pub use mdq_transport as transport;
