//! From multi-controlled operations to two-qudit gates: synthesize a
//! mixed-dimensional W state, lower it with the transpiler, and verify that
//! the lowered circuit still prepares the state.
//!
//! The paper counts multi-controlled operations and notes they "can later
//! be transposed into a sequence of local and two-qudit operations [35],
//! [36]"; this example performs that transposition.
//!
//! Run with: `cargo run --example transpile_demo`

use mdq::circuit::transpile;
use mdq::core::{prepare, PrepareOptions};
use mdq::num::radix::Dims;
use mdq::sim::StateVector;
use mdq::states::w_state;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = Dims::new(vec![3, 6, 2])?;
    let target = w_state(&dims);

    let result = prepare(&dims, &target, PrepareOptions::exact())?;
    let stats = result.circuit.stats();
    println!("multi-controlled circuit over {dims}:");
    println!(
        "  {} operations, median controls {}, max controls {}, depth {}",
        stats.operations,
        stats.controls_median,
        stats.controls_max,
        result.circuit.depth()
    );

    let lowered = transpile::to_two_qudit(&result.circuit)?;
    let lstats = lowered.circuit.stats();
    println!("\nlowered to local + two-qudit gates:");
    println!(
        "  {} instructions, {} ancilla qubit(s), depth {}",
        lstats.operations,
        lowered.ancilla_count,
        lowered.circuit.depth()
    );
    for instr in lowered.circuit.iter() {
        assert!(instr.qudits().count() <= 2);
    }

    // Verify: run the lowered circuit with ancillas in |0⟩ and project them
    // back out.
    let ground = StateVector::ground(dims.clone());
    let mut extended = ground.with_ancillas(&vec![2; lowered.ancilla_count]);
    extended.apply_circuit(&lowered.circuit);
    let (reduced, leaked) = extended.without_ancillas(lowered.original_qudits);
    let fidelity = reduced.fidelity_with_amplitudes(&target);

    println!("\nverification:");
    println!("  ancilla leakage = {leaked:.2e}");
    println!("  fidelity of prepared W state = {fidelity:.12}");
    assert!(leaked < 1e-12);
    assert!(fidelity > 1.0 - 1e-9);
    Ok(())
}
