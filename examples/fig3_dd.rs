//! Figure 3 of the paper: the decision diagram of the qutrit–qubit state
//! `(|00⟩ − |11⟩ + |21⟩)/√3`.
//!
//! Run with: `cargo run --example fig3_dd`
//!
//! Prints the diagram as a text tree and as Graphviz DOT, and shows how the
//! reduction step shares the two identical `|1⟩`-successor subtrees (the
//! paper: "the 2nd and 3rd edges of the root node connect to the same qubit
//! node, making use of redundancy").

use mdq::dd::{BuildOptions, StateDd};
use mdq::num::radix::Dims;
use mdq::num::Complex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = Dims::new(vec![3, 2])?;
    let a = 1.0 / 3.0_f64.sqrt();
    let mut amps = vec![Complex::ZERO; dims.space_size()];
    amps[dims.index_of(&[0, 0])] = Complex::real(a);
    amps[dims.index_of(&[1, 1])] = Complex::real(-a);
    amps[dims.index_of(&[2, 1])] = Complex::real(a);

    println!("state: (|00⟩ − |11⟩ + |21⟩)/√3 over a qutrit–qubit register {dims}\n");

    // The unreduced tree needs the explicit Table-1 reproduction path: the
    // default build hash-conses and would share subtrees immediately.
    let tree = StateDd::from_amplitudes(
        &dims,
        &amps,
        BuildOptions::default().keep_zero_subtrees(true),
    )?;
    println!("== tree form (before reduction) ==");
    println!("{}", tree.to_text());
    println!("{}\n", mdq::dd::render_summary(&tree));

    let reduced = tree.reduce();
    println!("== reduced form (identical subtrees shared, as in Fig. 3) ==");
    println!("{}", reduced.to_text());
    println!("{}\n", mdq::dd::render_summary(&reduced));

    println!("== amplitude reconstruction (path products) ==");
    for digits in dims.iter_basis() {
        let amp = reduced.amplitude(&digits);
        println!("  ⟨{}{}|ψ⟩ = {amp}", digits[0], digits[1]);
    }

    println!("\n== Graphviz DOT of the reduced diagram ==");
    print!("{}", reduced.to_dot());
    Ok(())
}
