//! Guarded serving: admission control + verification mode.
//!
//! Run with: `cargo run --release --example guarded_prepare`
//!
//! The walkthrough drives an [`EngineService`] configured like a guarded
//! production deployment:
//!
//! * a **bounded scheduler queue** (`with_queue_depth`) — `try_submit`
//!   sheds load with `EngineError::QueueFull` instead of letting the
//!   backlog grow without bound, while the blocking `submit` parks until
//!   space frees;
//! * **verification mode** (`with_verification`) — workers replay every
//!   synthesized circuit by decision-diagram simulation and compare the
//!   fidelity against the requested target before the caller ever sees
//!   the result.

use mdq::core::{PrepareOptions, VerificationPolicy};
use mdq::engine::{EngineConfig, EngineError, EngineService, PrepareRequest};
use mdq::num::radix::Dims;
use mdq::states::{ghz, random_state, w_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One worker and a 2-slot queue: small enough that a burst of
    // submissions actually overflows, which is the point of the demo.
    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(1)
            .with_queue_depth(2)
            .without_cache(),
    );

    // ── Admission control ────────────────────────────────────────────
    // Pin the worker on an expensive random state, then burst-submit
    // cheap jobs through the non-blocking path.
    let big = Dims::new(vec![9, 5, 6, 3])?;
    let mut rng = StdRng::seed_from_u64(7);
    let pinned = service.submit(PrepareRequest::dense(
        big.clone(),
        random_state(&big, RandomKind::ReImUniform, &mut rng),
        PrepareOptions::exact(),
    ));

    let small = Dims::new(vec![3, 6, 2])?;
    let cheap = PrepareRequest::dense(small.clone(), ghz(&small), PrepareOptions::exact());
    let mut accepted = Vec::new();
    let mut shed = 0u32;
    for _ in 0..32 {
        match service.try_submit(cheap.clone()) {
            Ok(handle) => accepted.push(handle),
            Err(refused) => {
                // The request comes back by value — requeue it elsewhere,
                // retry later, or drop it. Here we just count the shed.
                if let EngineError::QueueFull { depth, limit } = refused.error {
                    assert_eq!(depth, limit);
                }
                shed += 1;
            }
        }
    }
    println!(
        "burst of 32: {} admitted, {shed} shed by admission control",
        accepted.len()
    );

    // The blocking path never sheds — it parks until the queue drains.
    let parked = service.submit(cheap.clone());
    pinned.wait()?;
    for handle in accepted {
        handle.wait()?;
    }
    parked.wait()?;

    // ── Verification mode ────────────────────────────────────────────
    // Exact synthesis replays at fidelity ≈ 1: demanding 0.999 passes,
    // and the report carries the replay evidence.
    let verified = service
        .submit(
            PrepareRequest::dense(small.clone(), w_state(&small), PrepareOptions::exact())
                .with_verification(VerificationPolicy::replay(0.999)),
        )
        .wait()?;
    let report = verified.verification.as_ref().expect("verification ran");
    println!(
        "verified W-state: fidelity {:.9}, replay diagram {} nodes, took {:?}",
        report.fidelity, report.replay_nodes, report.duration
    );

    // An approximated job measures against the *original* target, so a
    // strict floor catches the approximation loss and fails the job.
    let strict = service
        .submit(
            PrepareRequest::dense(
                small.clone(),
                random_state(&small, RandomKind::ReImUniform, &mut rng),
                PrepareOptions::approximated(0.9).without_zero_subtrees(),
            )
            .with_verification(VerificationPolicy::replay(0.999_999)),
        )
        .wait();
    match strict {
        Err(EngineError::VerificationFailed {
            fidelity,
            threshold,
        }) => println!(
            "approximated job rejected: replay fidelity {fidelity:.6} < demanded {threshold}"
        ),
        other => println!("unexpected outcome: {other:?}"),
    }

    let stats = service.stats();
    println!(
        "\nstats: {} served, {} rejected, {} verified, {} verification failures, \
         queue high-watermark {}",
        stats.jobs,
        stats.rejected,
        stats.verified,
        stats.verification_failures,
        stats.high_watermark
    );
    service.shutdown();
    Ok(())
}
