//! Entanglement structure from the diagram alone: Schmidt-rank bounds for
//! every bipartition, read off the reduced decision diagram (§1 of the
//! paper motivates state preparation as a tool for studying exactly such
//! properties of qudit states).
//!
//! Run with: `cargo run --example entanglement_map`

use mdq::dd::{BuildOptions, StateDd};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::states;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = Dims::new(vec![3, 6, 2, 4])?;
    println!("register {dims}: Schmidt-rank bounds per cut (left|right)\n");

    let families: Vec<(&str, Vec<Complex>)> = vec![
        ("GHZ", states::ghz(&dims)),
        ("W (all levels)", states::w_state(&dims)),
        ("embedded W", states::embedded_w(&dims)),
        ("Dicke k=2", states::dicke(&dims, 2)),
        ("uniform (product)", states::uniform(&dims)),
        ("basis |1,2,0,3⟩", states::basis_state(&dims, &[1, 2, 0, 3])),
    ];

    println!("{:<18} {:>12} {:>10}", "state", "cut ranks", "product?");
    for (name, amps) in families {
        let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default())?.reduce();
        let ranks = dd.cut_ranks();
        println!(
            "{:<18} {:>12} {:>10}",
            name,
            format!("{ranks:?}"),
            if dd.is_product_bound() { "yes" } else { "no" }
        );
    }

    println!("\nGHZ is rank-k across every cut; W states are rank-2 everywhere;");
    println!("product states are rank-1 everywhere — all visible in the diagram");
    println!("without computing a single reduced density matrix.");
    Ok(())
}
