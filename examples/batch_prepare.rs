//! Batch preparation through the `mdq-engine` worker pool.
//!
//! Submits a mixed batch of dense and sparse preparation requests, shows
//! that the parallel results are bit-identical to the one-shot pipeline,
//! and resubmits the batch to demonstrate the fingerprint-keyed circuit
//! cache.
//!
//! Run with: `cargo run --release --example batch_prepare`

use mdq::core::{prepare, PrepareOptions};
use mdq::engine::{BatchEngine, EngineConfig, PrepareRequest};
use mdq::num::radix::Dims;
use mdq::sim::StateVector;
use mdq::states::{ghz, w_state};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d3 = Dims::new(vec![3, 6, 2])?;
    let d4 = Dims::new(vec![9, 5, 6, 3])?;
    let large = Dims::new(vec![3, 4, 2, 5, 3, 2, 4, 3, 2, 3, 4, 2])?;

    // A batch mixing dense targets, a sparse target on a register far
    // beyond dense reach, and a duplicate of the first request.
    let batch = vec![
        PrepareRequest::dense(d3.clone(), ghz(&d3), PrepareOptions::exact()),
        PrepareRequest::dense(d3.clone(), w_state(&d3), PrepareOptions::approximated(0.98)),
        PrepareRequest::dense(d4.clone(), w_state(&d4), PrepareOptions::approximated(0.98)),
        PrepareRequest::sparse(
            large.clone(),
            mdq::states::sparse::ghz(&large),
            PrepareOptions::exact(),
        ),
        PrepareRequest::dense(d3.clone(), ghz(&d3), PrepareOptions::exact()),
    ];

    let engine = BatchEngine::new(EngineConfig::default().with_workers(2));
    println!(
        "running {} requests on {} worker(s)…\n",
        batch.len(),
        engine.config().workers.min(batch.len())
    );
    let reports = engine.run(&batch);

    for (index, report) in reports.iter().enumerate() {
        let report = report.as_ref().expect("request succeeds");
        println!(
            "request {index}: {:>4} operations, {:>4} final edges, cached: {:<5} ({:?})",
            report.report.operations, report.report.nodes_final, report.from_cache, report.elapsed
        );
    }

    // The duplicate request produced a bit-identical circuit. (Whether it
    // was served from the cache depends on worker scheduling in the cold
    // batch — usually yes; the warm resubmission below is guaranteed.)
    let first = reports[0].as_ref().unwrap();
    let duplicate = reports[4].as_ref().unwrap();
    assert_eq!(first.circuit, duplicate.circuit);

    // Batch results are bit-identical to the one-shot pipeline…
    let one_shot = prepare(&d3, &ghz(&d3), PrepareOptions::exact())?;
    assert_eq!(first.circuit, one_shot.circuit);

    // …and the circuits really prepare their targets.
    let mut state = StateVector::ground(d3.clone());
    state.apply_circuit(&first.circuit);
    let fidelity = state.fidelity_with_amplitudes(&ghz(&d3));
    println!("\nGHZ circuit fidelity on the dense simulator: {fidelity:.12}");
    assert!(fidelity > 1.0 - 1e-9);

    // Resubmitting the whole batch is answered from the cache.
    let warm = engine.run(&batch);
    assert!(warm
        .iter()
        .all(|r| r.as_ref().expect("request succeeds").from_cache));

    let stats = engine.stats();
    println!(
        "engine stats: {} jobs, {} cache hits / {} misses, {} circuits stored,",
        stats.jobs, stats.cache.hits, stats.cache.misses, stats.cache.entries
    );
    println!(
        "              {} weight-table lookups, {} insertions across worker arenas",
        stats.weight_lookups, stats.weight_insertions
    );
    Ok(())
}
