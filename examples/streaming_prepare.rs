//! Streaming preparation through the persistent `EngineService`.
//!
//! Spawns the worker pool once, then streams a mix of large and small
//! requests into the non-blocking submission front-end: a latency-critical
//! GHZ job jumps the queue via `Priority::High`, results are awaited
//! per-job through `JobHandle` (polling and blocking), and the report's
//! `queue_wait` shows the size-aware scheduler protecting small jobs from
//! head-of-line blocking. A second wave demonstrates that workers — and
//! their warmed arenas — persist across submissions.
//!
//! Run with: `cargo run --release --example streaming_prepare`

use std::time::Duration;

use mdq::core::PrepareOptions;
use mdq::engine::{EngineConfig, EngineService, PrepareRequest, Priority};
use mdq::num::radix::Dims;
use mdq::states::{ghz, w_state};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = Dims::new(vec![3, 6, 2])?;
    let large = Dims::new(vec![9, 5, 6, 3])?;

    let service = EngineService::new(EngineConfig::default().with_workers(2));
    println!(
        "service up: {} persistent worker(s), size-aware scheduling\n",
        service.config().workers
    );

    // Stream requests in; `submit` returns immediately with a handle.
    // The large W-state jobs are expensive — under FIFO they would delay
    // everything submitted after them.
    let mut big_jobs = Vec::new();
    for _ in 0..2 {
        big_jobs.push(service.submit(PrepareRequest::dense(
            large.clone(),
            w_state(&large),
            PrepareOptions::approximated(0.98),
        )));
    }
    let mut small_jobs = Vec::new();
    for _ in 0..4 {
        small_jobs.push(service.submit(PrepareRequest::dense(
            small.clone(),
            w_state(&small),
            PrepareOptions::exact(),
        )));
    }
    // A latency-critical request jumps the whole queue.
    let urgent = service.submit(
        PrepareRequest::dense(small.clone(), ghz(&small), PrepareOptions::exact())
            .with_priority(Priority::High),
    );

    // Handles support blocking, polling, and timeout-based waits.
    let urgent = urgent.wait()?;
    println!(
        "urgent GHZ:   {:>3} operations, queued {:>9.1?}, ran {:>9.1?}",
        urgent.report.operations, urgent.queue_wait, urgent.elapsed
    );

    for (index, mut handle) in small_jobs.into_iter().enumerate() {
        // Poll with a timeout until the job resolves (a real server would
        // do this from its event loop).
        loop {
            if handle.wait_timeout(Duration::from_millis(50)).is_some() {
                break;
            }
            println!("small W {index}: still waiting…");
        }
        let report = handle.wait()?;
        println!(
            "small W {index}:    {:>3} operations, queued {:>9.1?}, ran {:>9.1?}",
            report.report.operations, report.queue_wait, report.elapsed
        );
    }
    for (index, handle) in big_jobs.into_iter().enumerate() {
        let report = handle.wait()?;
        println!(
            "large W {index}:    {:>3} operations, queued {:>9.1?}, ran {:>9.1?}",
            report.report.operations, report.queue_wait, report.elapsed
        );
    }

    // Second wave: the pool (and its warmed arenas) persisted.
    let replay = service
        .submit(PrepareRequest::dense(
            small.clone(),
            ghz(&small),
            PrepareOptions::exact(),
        ))
        .wait()?;
    assert!(replay.from_cache, "identical request served from the cache");

    let stats = service.stats();
    println!(
        "\nservice stats: {} jobs ({} cache hits, {} evictions), {} arena reuses,",
        stats.jobs, stats.cache.hits, stats.cache.evictions, stats.arena_reuses
    );
    println!(
        "               {} weight-table lookups / {} insertions across persistent workers",
        stats.weight_lookups, stats.weight_insertions
    );

    service.shutdown(); // drain queued work, then join the pool
    println!("service drained and shut down cleanly");
    Ok(())
}
