//! The accuracy / circuit-size trade-off of §4.3: sweep the target fidelity
//! on a random mixed-dimensional state and watch the diagram, the operation
//! count, and the measured fidelity shrink together.
//!
//! Run with: `cargo run --release --example approximate_random`

use mdq::core::{verify::prepare_and_verify, PrepareOptions};
use mdq::num::radix::Dims;
use mdq::states::{random_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One of the Table 1 registers: five qudits [2×6, 1×5, 2×3].
    let dims = Dims::new(vec![6, 6, 5, 3, 3])?;
    let mut rng = StdRng::seed_from_u64(2024);
    let target = random_state(&dims, RandomKind::ReImUniform, &mut rng);

    println!(
        "random state over {dims} ({} amplitudes)\n",
        dims.space_size()
    );
    println!(
        "{:>10} {:>8} {:>8} {:>11} {:>10} {:>10}",
        "threshold", "nodes", "ops", "ctrl(med)", "bound", "measured"
    );

    for threshold in [1.0, 0.999, 0.99, 0.98, 0.95, 0.90, 0.80] {
        let opts = if threshold >= 1.0 {
            PrepareOptions::exact()
        } else {
            PrepareOptions::approximated(threshold)
        };
        let (result, fidelity) = prepare_and_verify(&dims, &target, opts)?;
        println!(
            "{:>10.3} {:>8} {:>8} {:>11.1} {:>10.4} {:>10.4}",
            threshold,
            result.report.nodes_final,
            result.report.operations,
            result.report.controls_median,
            result.report.fidelity_bound,
            fidelity
        );
        assert!(fidelity + 1e-9 >= threshold.min(1.0));
    }

    println!("\nEvery row satisfies its fidelity bound; lower thresholds buy");
    println!("smaller diagrams and shorter circuits (the paper's Table 1 uses 0.98).");
    Ok(())
}
