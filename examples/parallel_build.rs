//! Intra-job parallel DD construction — and its bit-identity guarantee.
//!
//! Builds one large dense random state directly through `BuildOptions::
//! build_threads` at 1, 2, and 4 threads, proving every parallel result is
//! **raw-bit identical** to the sequential build (same node count, same
//! amplitudes down to the last bit). Then serves a stream of large jobs
//! through a one-worker `EngineService` with `with_intra_job_threads`
//! enabled: jobs above the cost threshold borrow spare cores for their
//! build, jobs below it run the exact sequential path, and the
//! `parallel_builds` counter reports what actually fanned out. On a
//! single-core host the grant clamps to one thread and the counter stays
//! at zero — enabling the feature never oversubscribes the machine.
//!
//! Run with: `cargo run --release --example parallel_build`

use std::time::Instant;

use mdq::core::PrepareOptions;
use mdq::dd::{plan_split, BuildOptions, StateDd};
use mdq::engine::{EngineConfig, EngineService, PrepareRequest};
use mdq::num::radix::Dims;
use mdq::states::{random_state, RandomKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = Dims::new(vec![3, 4, 3, 4, 3, 4])?;
    let mut rng = StdRng::seed_from_u64(42);
    let target = random_state(&dims, RandomKind::ReImUniform, &mut rng);
    println!(
        "register {dims}: {} amplitudes, {} core(s) visible\n",
        dims.space_size(),
        std::thread::available_parallelism().map_or(1, usize::from)
    );

    // Direct builds: the split planner partitions the top levels into
    // independent subtree tasks; the merge re-interns them in exactly the
    // order the sequential recursion would have, so the result is not
    // "equal within tolerance" — it is the same diagram, bit for bit.
    let t = Instant::now();
    let sequential = StateDd::from_amplitudes(&dims, &target, BuildOptions::default())?;
    let sequential_time = t.elapsed();
    let want = sequential.to_amplitudes();
    println!(
        "sequential build: {} nodes in {sequential_time:.1?}",
        sequential.node_count()
    );

    for threads in [2usize, 4] {
        let plan = plan_split(&dims, threads).expect("multi-level registers split");
        let t = Instant::now();
        let parallel = StateDd::from_amplitudes(
            &dims,
            &target,
            BuildOptions::default().build_threads(threads),
        )?;
        let elapsed = t.elapsed();
        let identical = want
            .iter()
            .zip(parallel.to_amplitudes().iter())
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
        assert!(identical, "parallel build must be raw-bit identical");
        println!(
            "{threads}-thread build:   {} nodes in {elapsed:.1?}  \
             (split depth {}, {} subtree tasks, raw-bit identical: {identical})",
            parallel.node_count(),
            plan.depth,
            plan.tasks
        );
    }

    // Serving: one worker, up to 4 build threads for jobs costing ≥ 500.
    // The grant draws only from cores the worker pool leaves free, so this
    // cannot slow a small-job stream or oversubscribe a busy machine.
    let service = EngineService::new(
        EngineConfig::default()
            .with_workers(1)
            .without_cache()
            .with_intra_job_threads(500, 4),
    );
    let small_dims = Dims::new(vec![3, 3])?;
    let mut handles = Vec::new();
    for job in 0..4 {
        let mut rng = StdRng::seed_from_u64(100 + job);
        handles.push(service.submit(PrepareRequest::dense(
            dims.clone(),
            random_state(&dims, RandomKind::ReImUniform, &mut rng),
            PrepareOptions::exact().without_zero_subtrees(),
        )));
    }
    // Below the threshold: always built sequentially, grant or no grant.
    handles.push(service.submit(PrepareRequest::dense(
        small_dims.clone(),
        mdq::states::ghz(&small_dims),
        PrepareOptions::exact(),
    )));
    for (index, handle) in handles.into_iter().enumerate() {
        let report = handle.wait()?;
        println!(
            "job {index}: {:>3} operations, ran {:>9.1?}",
            report.report.operations, report.elapsed
        );
    }
    let stats = service.stats();
    println!(
        "\n{} of {} jobs built on >1 thread (0 on a single-core host — the \
         grant never oversubscribes)",
        stats.parallel_builds, stats.jobs
    );
    service.shutdown();
    Ok(())
}
