//! Network serving over a unix-domain socket: a `WireServer` and a
//! blocking `WireClient` in one process, speaking `mdqwire` frames under
//! the checksummed `mdqtx` envelope.
//!
//! A two-shard router serves behind the socket. The client round-trips a
//! small workload (every circuit raw-bit identical to the one-shot
//! sequential pipeline), a suspended tenant gets its quota refusal back
//! as a typed `tenant-over-quota` error frame — the request is still in
//! the client's hands, and the *same frame* completes once the quota
//! lifts — and finally the whole server is killed and rebound on the same
//! path: shards write their cache snapshots on the way down, the reborn
//! server loads them, and the client rides its retry/backoff straight
//! through the restart into warm cache hits.
//!
//! Run with: `cargo run --release --example remote_serving`

#[cfg(unix)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use mdq::core::PrepareOptions;
    use mdq::engine::{EngineConfig, ErrorFrame, PrepareRequest, RequestFrame};
    use mdq::num::radix::Dims;
    use mdq::router::{Router, RouterConfig, TenantId, TenantQuota};
    use mdq::states::{ghz, w_state};
    use mdq::transport::{
        Backend, ClientConfig, ServerAddr, ServerConfig, ServerReply, WireClient, WireServer,
    };

    let scratch = std::env::temp_dir().join("mdq_remote_serving_example");
    let _ = std::fs::remove_dir_all(&scratch);
    let snapshot_dir = scratch.join("snapshots");
    std::fs::create_dir_all(&snapshot_dir)?;
    let socket = scratch.join("serve.sock");
    let addr = ServerAddr::unix(&socket);

    // ── A two-shard router behind a unix-socket server ─────────────────
    let bind_router = || {
        let router = Router::new(
            RouterConfig::default()
                .with_engine_config(EngineConfig::default().with_workers(1))
                .with_snapshot_dir(&snapshot_dir),
        );
        router.add_shard(0);
        router.add_shard(1);
        router
    };
    let server = WireServer::bind(
        &addr,
        Backend::Router(Box::new(bind_router())),
        ServerConfig::new(),
    )?;
    println!("serving on {}", server.local_addr());

    let batch = TenantId(1);
    let suspended = TenantId(2);
    server
        .backend()
        .router()
        .expect("router backend")
        .set_quota(suspended, TenantQuota::unlimited().with_max_in_flight(0));

    // ── A blocking client dials the socket and round-trips jobs ────────
    let mut client = WireClient::connect(addr.clone(), ClientConfig::new())?;
    let workload: Vec<PrepareRequest> = [vec![3, 3], vec![2, 3, 4], vec![5, 2]]
        .into_iter()
        .flat_map(|radices| {
            let dims = Dims::new(radices).expect("valid register");
            [
                PrepareRequest::dense(dims.clone(), ghz(&dims), PrepareOptions::exact()),
                PrepareRequest::dense(dims.clone(), w_state(&dims), PrepareOptions::exact()),
            ]
        })
        .collect();
    for request in &workload {
        let reference = request.clone().prepare_sequential()?;
        let frame = RequestFrame {
            tenant: Some(batch.0),
            request: request.clone(),
        };
        let report = client
            .call(&frame)?
            .report()
            .expect("batch tenant is unbounded");
        assert_eq!(
            report.report.circuit, reference.circuit,
            "served circuit raw-bit identical to the sequential pipeline"
        );
        println!(
            "served {:>10}: {} instructions, from_cache: {}",
            format!("{}", report.dims),
            report.report.circuit.instructions().len(),
            report.report.from_cache
        );
    }

    // ── Quota refusal crosses the wire as a typed error frame ──────────
    let held = RequestFrame {
        tenant: Some(suspended.0),
        request: workload[0].clone(),
    };
    match client.call(&held)? {
        ServerReply::Refused(ErrorFrame::TenantOverQuota {
            tenant,
            in_flight,
            limit,
        }) => println!(
            "tenant {tenant} refused: {in_flight} in flight, limit {limit} \
             — the request is still ours to resubmit"
        ),
        other => panic!("expected a quota refusal, got {other:?}"),
    }
    server
        .backend()
        .router()
        .expect("router backend")
        .set_quota(suspended, TenantQuota::unlimited());
    let report = client
        .call(&held)?
        .report()
        .expect("the same frame completes once the quota lifts");
    println!(
        "tenant {} served after the quota lifted, from_cache: {}",
        suspended.0, report.report.from_cache
    );

    // ── Kill the server; restart warm on the same path ─────────────────
    // Shutdown drains in-flight connections and writes one cache snapshot
    // per shard; the reborn server's shards load them at bind time.
    server.shutdown();
    println!(
        "\nserver killed; snapshots written to {}",
        snapshot_dir.display()
    );
    let reborn = WireServer::bind(
        &addr,
        Backend::Router(Box::new(bind_router())),
        ServerConfig::new(),
    )?;
    let stats = reborn.backend().router().expect("router backend").stats();
    for shard in &stats.shards {
        println!(
            "shard {} rebound warm: {:?} snapshot records loaded",
            shard.shard, shard.warm_loaded
        );
    }

    // The client's old connection died with the first server; the retry
    // budget reconnects and every resubmission is a warm cache hit.
    let mut warm_hits = 0;
    for request in &workload {
        let frame = RequestFrame {
            tenant: Some(batch.0),
            request: request.clone(),
        };
        let report = client
            .call_with_retry(&frame, 5)?
            .report()
            .expect("reborn server serves");
        warm_hits += usize::from(report.report.from_cache);
    }
    println!(
        "resubmitted {} jobs through the restart: {warm_hits} warm cache hits, \
         {} reconnect(s)",
        workload.len(),
        client.connections() - 1
    );
    assert!(
        warm_hits > 0,
        "the reborn shards must serve from their snapshots"
    );

    reborn.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
    Ok(())
}

#[cfg(not(unix))]
fn main() {
    println!("remote_serving demonstrates unix-domain sockets; on this platform run the transport over TCP instead (see ServerAddr::loopback)");
}
