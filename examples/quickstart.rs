//! Quickstart: prepare the two-qutrit GHZ state of the paper's Figure 1.
//!
//! Run with: `cargo run --example quickstart`
//!
//! This walks the whole pipeline once: state → decision diagram →
//! synthesized circuit → simulated verification.

use mdq::core::{prepare, PrepareOptions};
use mdq::num::radix::Dims;
use mdq::sim::StateVector;
use mdq::states::ghz;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-qutrit register; GHZ = (|00⟩ + |11⟩ + |22⟩)/√3 (Example 3).
    let dims = Dims::new(vec![3, 3])?;
    let target = ghz(&dims);

    let result = prepare(&dims, &target, PrepareOptions::exact())?;

    println!("== target state ==");
    println!("GHZ over {dims}: (|00⟩ + |11⟩ + |22⟩)/√3\n");

    println!("== decision diagram ==");
    println!("{}\n", mdq::dd::render_summary(&result.dd));

    println!("== synthesized preparation circuit ==");
    print!("{}", result.circuit.render());
    let stats = result.circuit.stats();
    println!(
        "\noperations = {}, median controls = {}, depth = {}\n",
        stats.operations,
        stats.controls_median,
        result.circuit.depth()
    );

    println!("== verification ==");
    let mut state = StateVector::ground(dims);
    state.apply_circuit(&result.circuit);
    let fidelity = state.fidelity_with_amplitudes(&target);
    println!("fidelity reached from |00⟩: {fidelity:.12}");
    println!("prepared state: {state}");
    assert!(fidelity > 1.0 - 1e-9);
    Ok(())
}
