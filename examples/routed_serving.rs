//! Sharded multi-tenant serving through the `mdq-router` front-end.
//!
//! A three-shard router serves two tenants: an unbounded batch tenant and
//! an interactive tenant capped at two in-flight jobs. Requests are placed
//! by consistent-hashing their cache fingerprint, so equal requests always
//! land on the same shard and repeat submissions hit that shard's cache.
//! The capped tenant bursts past its quota and gets every excess request
//! handed back by value in the `TenantOverQuota` error — ready to resubmit
//! once its earlier jobs drain — while the batch tenant is unaffected.
//! Finally one shard leaves the ring (writing its cache snapshot on the
//! way out) and rejoins warm from that snapshot, serving a request it
//! prepared before the resize straight from its reloaded cache.
//!
//! Run with: `cargo run --release --example routed_serving`

use mdq::core::PrepareOptions;
use mdq::engine::{EngineConfig, PrepareRequest};
use mdq::num::radix::Dims;
use mdq::router::{Router, RouterConfig, RouterError, TenantId, TenantQuota};
use mdq::states::{ghz, w_state};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let snapshot_dir = std::env::temp_dir().join("mdq_routed_serving_example");
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    std::fs::create_dir_all(&snapshot_dir)?;

    // ── A three-shard router, one snapshot file per shard ──────────────
    let router = Router::new(
        RouterConfig::default()
            .with_engine_config(EngineConfig::default().with_workers(1))
            .with_snapshot_dir(&snapshot_dir),
    );
    for shard in 0..3 {
        router.add_shard(shard);
    }
    let batch = TenantId(1);
    let interactive = TenantId(2);
    router.set_quota(interactive, TenantQuota::unlimited().with_max_in_flight(2));

    // ── Batch tenant: a spread of registers fans out over the ring ─────
    let workload: Vec<PrepareRequest> = [vec![3, 3], vec![2, 3, 4], vec![5, 2], vec![4, 4, 2]]
        .into_iter()
        .flat_map(|radices| {
            let dims = Dims::new(radices).expect("valid register");
            [
                PrepareRequest::dense(dims.clone(), ghz(&dims), PrepareOptions::exact()),
                PrepareRequest::dense(dims.clone(), w_state(&dims), PrepareOptions::exact()),
            ]
        })
        .collect();
    let handles: Vec<_> = workload
        .iter()
        .map(|request| {
            router
                .submit(batch, request.clone())
                .expect("unbounded tenant admits")
        })
        .collect();
    let placements: Vec<usize> = handles.iter().map(|handle| handle.shard()).collect();
    for handle in handles {
        handle.wait()?;
    }
    println!(
        "batch tenant: {} jobs over shards {:?}",
        workload.len(),
        placements
    );

    // ── Interactive tenant: burst past the two-in-flight quota ─────────
    let dims = Dims::new(vec![6, 6])?;
    let burst: Vec<PrepareRequest> = (0..5)
        .map(|k| {
            let mut amps = ghz(&dims);
            amps[k + 1] = amps[0]; // five distinct states, one per submission
            let norm = mdq::num::norm(&amps);
            PrepareRequest::dense(
                dims.clone(),
                amps.iter().map(|a| *a / norm).collect(),
                PrepareOptions::exact(),
            )
        })
        .collect();
    let mut held = Vec::new();
    let mut handed_back = Vec::new();
    for request in burst {
        match router.submit(interactive, request) {
            Ok(handle) => held.push(handle),
            Err(RouterError::TenantOverQuota {
                tenant,
                request,
                in_flight,
                limit,
            }) => {
                println!(
                    "{tenant}: refused at {in_flight}/{limit} in flight — request handed back"
                );
                handed_back.push(request);
            }
            Err(other) => return Err(format!("unexpected refusal: {other}").into()),
        }
    }
    for handle in held.drain(..) {
        handle.wait()?; // draining releases the tenant's in-flight slots
    }
    for request in handed_back.drain(..) {
        router.submit(interactive, request)?.wait()?;
    }
    println!("interactive tenant: burst drained, handed-back requests resubmitted\n");

    // ── Resize: one shard leaves with a snapshot, rejoins warm ─────────
    let victim = placements[0];
    let rehearsal = workload[0].clone();
    router.remove_shard(victim); // graceful: drains, writes shard-<id>.mdqsnap
    router.add_shard(victim); // rejoins, loading the snapshot it just wrote
    let report = router.submit(batch, rehearsal)?.wait()?;
    let stats = router.stats();
    let rejoined = stats
        .shards
        .iter()
        .find(|shard| shard.shard == victim)
        .expect("victim rejoined the ring");
    println!(
        "shard {victim} rejoined warm: {} snapshot entr{} loaded, replayed request from_cache: {}",
        rejoined.warm_loaded.unwrap_or(0),
        if rejoined.warm_loaded == Some(1) {
            "y"
        } else {
            "ies"
        },
        report.from_cache
    );
    assert!(
        report.from_cache,
        "rejoined shard must serve from its snapshot"
    );

    // ── The ledger: per-tenant and per-shard accounting ────────────────
    println!(
        "\nrouter totals: {} submitted, {} completed, {} rejected",
        stats.submitted, stats.completed, stats.rejected
    );
    for tenant in &stats.tenants {
        println!(
            "  {}: submitted {}, completed {}, rejected {}, in flight {}",
            tenant.tenant, tenant.submitted, tenant.completed, tenant.rejected, tenant.in_flight
        );
    }
    for shard in &stats.shards {
        println!(
            "  shard {}: {} jobs, cache hit rate {:.0}%",
            shard.shard,
            shard.engine.jobs,
            shard.hit_rate * 100.0
        );
    }

    router.shutdown();
    std::fs::remove_dir_all(&snapshot_dir)?;
    Ok(())
}
