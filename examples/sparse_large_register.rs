//! Beyond dense reach: synthesize state-preparation circuits for registers
//! whose Hilbert space could never be allocated, using the sparse pipeline.
//!
//! Run with: `cargo run --release --example sparse_large_register`
//!
//! The paper's evaluation stops at 6720 dense amplitudes; the decision
//! diagram itself has no such limit for structured states. This example
//! prepares GHZ, W and Dicke states over a 20-qudit mixed register
//! (≈ 10¹⁰ basis states) in microseconds, because the diagram and the
//! circuit are linear in the register size.

use mdq::core::{prepare_sparse, verify::prepared_fidelity_dd, PrepareOptions};
use mdq::dd::{BuildOptions, StateDd};
use mdq::num::radix::Dims;
use mdq::states::sparse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pattern = vec![
        3usize, 4, 2, 5, 3, 2, 4, 3, 2, 3, 4, 2, 5, 3, 2, 3, 4, 2, 3, 5,
    ];
    let dims = Dims::new(pattern)?;
    let space: f64 = dims.as_slice().iter().map(|&d| d as f64).product();
    println!(
        "register: {} ({} qudits, ≈{:.2e} basis states)\n",
        dims,
        dims.len(),
        space
    );

    println!(
        "{:<10} {:>8} {:>8} {:>6} {:>10} {:>12} {:>10}",
        "state", "support", "nodes", "ops", "ctrl(max)", "time", "fidelity"
    );
    let workloads: Vec<(&str, sparse::SparseState)> = vec![
        ("GHZ", sparse::ghz(&dims)),
        ("W", sparse::w_state(&dims)),
        ("Emb. W", sparse::embedded_w(&dims)),
        ("Dicke k=2", sparse::dicke(&dims, 2)),
    ];

    for (name, entries) in workloads {
        let support = entries.len();
        let result = prepare_sparse(&dims, &entries, PrepareOptions::exact())?;

        // The dense simulator cannot verify at this scale, but the
        // decision-diagram simulator can: run the synthesized circuit on
        // the |0…0⟩ diagram and compare against the target diagram.
        let target = StateDd::from_sparse(&dims, &entries, BuildOptions::default())?;
        let fidelity = prepared_fidelity_dd(&result.circuit, &target);

        println!(
            "{:<10} {:>8} {:>8} {:>6} {:>10} {:>12?} {:>10.6}",
            name,
            support,
            result.dd.node_count(),
            result.report.operations,
            result.report.controls_max,
            result.report.total_time,
            fidelity,
        );
        assert!(fidelity > 1.0 - 1e-9, "{name}: fidelity {fidelity}");
    }

    println!("\nEvery circuit was verified end to end by decision-diagram simulation;");
    println!("the dense vector (≈80 GB of amplitudes) never existed.");
    Ok(())
}
