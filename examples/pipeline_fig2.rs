//! Figure 2 of the paper: the three steps of state preparation —
//! representation as a DD, approximation, and synthesis.
//!
//! Run with: `cargo run --example pipeline_fig2`
//!
//! The example state mirrors the figure: three branches with probability
//! masses 0.5, 0.4 and 0.1. With a 98 % fidelity target, the 0.1 branch is
//! pruned; the two survivors become identical subtrees that the reduction
//! shares, which removes controls from the synthesized operations ("due to
//! the properties of tensor products, no controls will be synthesized").

use mdq::core::{prepare, verify::prepared_fidelity, PrepareOptions};
use mdq::num::radix::Dims;
use mdq::num::Complex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A qutrit whose three levels carry masses 0.5 / 0.4 / 0.1, each
    // followed by the same qubit state |+⟩ on the surviving branches and a
    // different qubit state on the light one.
    let dims = Dims::new(vec![3, 2])?;
    let h = 1.0 / 2.0_f64.sqrt();
    let mut amps = vec![Complex::ZERO; dims.space_size()];
    let w0 = 0.5f64.sqrt();
    let w1 = 0.4f64.sqrt();
    let w2 = 0.1f64.sqrt();
    amps[dims.index_of(&[0, 0])] = Complex::real(w0 * h);
    amps[dims.index_of(&[0, 1])] = Complex::real(w0 * h);
    amps[dims.index_of(&[1, 0])] = Complex::real(w1 * h);
    amps[dims.index_of(&[1, 1])] = Complex::real(w1 * h);
    amps[dims.index_of(&[2, 0])] = Complex::real(w2); // |0⟩ on the light branch
    let norm = mdq::num::norm(&amps);
    for a in &mut amps {
        *a = *a / norm;
    }

    println!("step 1 — exact decision diagram");
    let exact = prepare(&dims, &amps, PrepareOptions::exact())?;
    println!("  {}", mdq::dd::render_summary(&exact.dd));
    println!(
        "  operations = {}, median controls = {}",
        exact.report.operations, exact.report.controls_median
    );

    println!("\nstep 2 — approximation at 98% target fidelity");
    let approx = prepare(
        &dims,
        &amps,
        PrepareOptions::approximated(0.98).with_reduction(),
    )?;
    println!("  {}", mdq::dd::render_summary(&approx.dd));
    println!(
        "  pruned mass = {:.4} (removed {} node(s)), fidelity bound = {:.4}",
        approx.report.pruned_mass, approx.report.removed_nodes, approx.report.fidelity_bound
    );

    println!("\nstep 3 — synthesized circuits");
    println!("  exact:");
    print!("{}", indent(&exact.circuit.render()));
    println!("  approximated + reduced (note the missing controls):");
    print!("{}", indent(&approx.circuit.render()));

    let f_exact = prepared_fidelity(&exact.circuit, &amps);
    let f_approx = prepared_fidelity(&approx.circuit, &amps);
    println!("\nmeasured fidelity: exact = {f_exact:.6}, approximated = {f_approx:.6}");
    assert!(f_exact > 1.0 - 1e-9);
    assert!(f_approx >= 0.98);
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
