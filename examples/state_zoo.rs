//! A tour of the benchmark state families across mixed-dimensional
//! registers: GHZ, W (all levels), embedded W, Dicke, cyclic, uniform.
//!
//! Run with: `cargo run --example state_zoo`
//!
//! For every (family, register) pair the example synthesizes the exact
//! preparation circuit, reports the Table 1 metrics, and verifies the
//! reached fidelity — a miniature of the paper's evaluation.

use mdq::core::{verify::prepare_and_verify, PrepareOptions};
use mdq::num::radix::Dims;
use mdq::num::Complex;
use mdq::states;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registers = [vec![3usize, 3], vec![3, 6, 2], vec![9, 5, 6, 3]];

    println!(
        "{:<12} {:<14} {:>7} {:>9} {:>6} {:>10} {:>10}",
        "family", "dims", "nodes", "distinctC", "ops", "ctrl(med)", "fidelity"
    );

    for reg in &registers {
        let dims = Dims::new(reg.clone())?;
        let families: Vec<(&str, Vec<Complex>)> = vec![
            ("GHZ", states::ghz(&dims)),
            ("W", states::w_state(&dims)),
            ("Emb. W", states::embedded_w(&dims)),
            ("Dicke k=2", states::dicke(&dims, 2)),
            ("uniform", states::uniform(&dims)),
            ("cyclic", states::cyclic(&dims, &cyclic_seed(&dims))),
        ];
        for (name, target) in families {
            let (result, fidelity) = prepare_and_verify(&dims, &target, PrepareOptions::exact())?;
            println!(
                "{:<12} {:<14} {:>7} {:>9} {:>6} {:>10.1} {:>10.6}",
                name,
                dims.to_string(),
                result.report.nodes_initial,
                result.report.distinct_c_initial,
                result.report.operations,
                result.report.controls_median,
                fidelity
            );
            assert!(fidelity > 1.0 - 1e-9, "{name} over {dims}");
        }
        println!();
    }
    Ok(())
}

/// A seed string for the cyclic family that is valid on any register:
/// `[1, 0, 0, …]` rotated across the qudits.
fn cyclic_seed(dims: &Dims) -> Vec<usize> {
    let mut seed = vec![0; dims.len()];
    seed[0] = 1;
    seed
}
