//! Figure 4 / Example 5 of the paper: one step of the synthesis algorithm
//! on a two-qutrit diagram — the rotation `R^{12}` on the second qutrit is
//! controlled on level 1 of the first, "since the rotation was derived from
//! the node with index 1".
//!
//! Run with: `cargo run --example fig4_synthesis_step`

use mdq::core::{synthesize, Direction, SynthesisOptions};
use mdq::dd::{BuildOptions, StateDd};
use mdq::num::radix::Dims;
use mdq::num::Complex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two qutrits; the branch below root level 1 holds a superposition of
    // levels 1 and 2 of the second qutrit, so disentangling it requires an
    // R[1,2] rotation controlled on q0@1.
    let dims = Dims::new(vec![3, 3])?;
    let mut amps = vec![Complex::ZERO; dims.space_size()];
    amps[dims.index_of(&[0, 0])] = Complex::real(0.5f64.sqrt());
    amps[dims.index_of(&[1, 1])] = Complex::real(0.3f64.sqrt());
    amps[dims.index_of(&[1, 2])] = Complex::real(0.2f64.sqrt());

    let dd = StateDd::from_amplitudes(&dims, &amps, BuildOptions::default())?;
    println!("decision diagram:");
    println!("{}", dd.to_text());

    // Emit in derivation (disentangling) order so the per-node steps are
    // visible in the order the algorithm produces them.
    let steps = synthesize(
        &dd,
        SynthesisOptions {
            direction: Direction::Disentangle,
            ..SynthesisOptions::default()
        },
    );
    println!("synthesis steps (disentangling order):");
    for (i, instr) in steps.iter().enumerate() {
        println!("  step {i}: {instr}");
    }

    // The highlighted step of Figure 4: a Givens rotation on levels (1,2)
    // of qutrit 1, controlled on level 1 of qutrit 0.
    let fig4 = steps
        .iter()
        .find(|instr| {
            instr.qudit == 1
                && matches!(
                    instr.gate,
                    mdq::circuit::Gate::Givens { lo: 1, hi: 2, theta, .. } if theta.abs() > 1e-9
                )
                && instr
                    .controls
                    .first()
                    .is_some_and(|c| c.qudit == 0 && c.level == 1)
        })
        .expect("the Figure 4 rotation is synthesized");
    println!("\nFigure 4 step found: {fig4}");
    Ok(())
}
