//! Warm-starting the `EngineService` from a cache snapshot.
//!
//! A first service "process" serves a small workload cold (every request
//! pays the synthesis pipeline), then snapshots its prepared-circuit cache
//! to disk on graceful shutdown. A "restarted" service loads the snapshot
//! at construction and serves the identical workload entirely from the
//! cache — same circuits, bit for bit, without running the pipeline
//! again. Finally the restarted cache is frozen into a shared read-mostly
//! `HotTier`, which a third service consults on its own cache misses —
//! the pattern for sharing hot entries between services in one process.
//!
//! Run with: `cargo run --release --example warm_restart`

use std::sync::Arc;

use mdq::core::PrepareOptions;
use mdq::engine::{EngineConfig, EngineService, PrepareRequest};
use mdq::num::radix::Dims;
use mdq::states::{ghz, w_state};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("mdq_warm_restart_example.mdqsnap");
    let _ = std::fs::remove_file(&path);

    let d1 = Dims::new(vec![3, 6, 2])?;
    let d2 = Dims::new(vec![4, 3, 5])?;
    let workload = [
        PrepareRequest::dense(d1.clone(), ghz(&d1), PrepareOptions::exact()),
        PrepareRequest::dense(d1.clone(), w_state(&d1), PrepareOptions::approximated(0.98)),
        PrepareRequest::dense(d2.clone(), ghz(&d2), PrepareOptions::exact()),
        PrepareRequest::dense(d2.clone(), w_state(&d2), PrepareOptions::exact()),
    ];

    // ── Process 1: cold serving, snapshot on graceful shutdown ─────────
    let first = EngineService::new(
        EngineConfig::default()
            .with_workers(2)
            .with_warm_start(&path), // missing file ⇒ silent cold start
    );
    let cold: Vec<_> = first
        .submit_batch(workload.iter().cloned())
        .into_iter()
        .map(|handle| handle.wait())
        .collect::<Result<_, _>>()?;
    let stats = first.cache().stats();
    println!(
        "process 1 (cold): {} jobs served, cache {} hits / {} misses, {} entries",
        cold.len(),
        stats.hits,
        stats.misses,
        stats.entries
    );
    first.shutdown(); // drains, joins, and writes the snapshot
    println!(
        "snapshot written: {} ({} bytes)\n",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // ── Process 2: restart from the snapshot ───────────────────────────
    let second = EngineService::new(
        EngineConfig::default()
            .with_workers(2)
            .with_warm_start(&path),
    );
    if let Some(Ok(load)) = second.warm_start_load() {
        println!(
            "process 2: loaded {} entr{} in {:?} ({} skipped)",
            load.loaded,
            if load.loaded == 1 { "y" } else { "ies" },
            load.duration,
            load.skipped
        );
    }
    let warm: Vec<_> = second
        .submit_batch(workload.iter().cloned())
        .into_iter()
        .map(|handle| handle.wait())
        .collect::<Result<_, _>>()?;
    let stats = second.cache().stats();
    println!(
        "process 2 (warm): cache {} hits / {} misses — hit rate {:.0}%",
        stats.hits,
        stats.misses,
        100.0 * stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64
    );
    let identical = cold
        .iter()
        .zip(&warm)
        .all(|(c, w)| c.circuit == w.circuit && w.from_cache);
    println!("snapshot-served circuits bit-identical to the cold run: {identical}\n");
    assert!(identical);

    // ── Sharing: freeze the warm cache into a read-mostly hot tier ─────
    let tier = Arc::new(second.cache().freeze());
    second.shutdown();
    let third = EngineService::new(
        EngineConfig::default()
            .with_workers(1)
            .with_hot_tier(Arc::clone(&tier)),
    );
    let report = third.submit(workload[0].clone()).wait()?;
    let stats = third.cache().stats();
    println!(
        "process 3 (shared tier of {} entries): from_cache {}, hot-tier hits {}, own entries {}",
        tier.len(),
        report.from_cache,
        stats.hot_hits,
        stats.entries
    );
    third.shutdown();
    std::fs::remove_file(&path)?;
    Ok(())
}
