//! Minimal, offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate, vendored
//! because the build environment has no registry access.
//!
//! Covers the surface the `mdq` benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of criterion's statistical analysis it runs a short
//! warm-up followed by `sample_size` timed iterations and prints the mean
//! and minimum wall-clock time per iteration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn sample_size(mut self, size: usize) -> Self {
        assert!(size > 0, "sample size must be positive");
        self.sample_size = size;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        run_one(&id, sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing the parent driver's settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.criterion.sample_size, f);
        self
    }

    /// Runs one benchmark of this group against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id labelled `function_name/parameter`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId {
            text: text.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` through a warm-up then `sample_size` timed iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..3.min(self.sample_size) {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id}: no samples");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "  {id}: mean {mean:?} / min {min:?} over {} iterations",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// two accepted forms (plain list, and `name/config/targets`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
