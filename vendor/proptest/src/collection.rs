//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive bound on generated collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            lo: range.start,
            hi: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            lo: *range.start(),
            hi: *range.end(),
        }
    }
}

/// A strategy producing `Vec`s whose length falls in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
