//! The case runner and its configuration.

use crate::strategy::Strategy;

/// Runner configuration; only `cases` is honoured by this stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the run is abandoned.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole property fails.
    Fail(String),
    /// A `prop_assume!` rejected the input; the case is re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// A rejection with the given reason.
    #[must_use]
    pub fn reject(reason: String) -> Self {
        TestCaseError::Reject(reason)
    }
}

/// The deterministic bit source driving strategy generation.
///
/// A SplitMix64 seeded from the test name, so every run of a given test
/// sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded deterministically from a test's full name.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

/// Drives one property: draws inputs from `strategy` until `config.cases`
/// cases pass, panicking on the first failure.
///
/// # Panics
///
/// Panics when a case fails or the rejection cap is exceeded.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, mut case: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let value = strategy.generate(&mut rng);
        match case(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("{name}: property failed after {passed} passing case(s): {message}")
            }
        }
    }
}
