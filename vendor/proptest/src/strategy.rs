//! The [`Strategy`] trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// How many re-draws a filtering strategy attempts before giving up.
const MAX_FILTER_ATTEMPTS: u32 = 10_000;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is simply a deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (for dependent inputs such as "a register, then a state
    /// of that register's size").
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values for which `f` returns `false`.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Simultaneously filters and maps: values for which `f` returns
    /// `None` are re-drawn.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F, U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
            _marker: PhantomData,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let value = self.inner.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter exhausted {MAX_FILTER_ATTEMPTS} attempts: {}",
            self.whence
        );
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F, U> {
    inner: S,
    whence: &'static str,
    f: F,
    _marker: PhantomData<fn() -> U>,
}

impl<S, F, U> Strategy for FilterMap<S, F, U>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            if let Some(value) = (self.f)(self.inner.generate(rng)) {
                return value;
            }
        }
        panic!(
            "prop_filter_map exhausted {MAX_FILTER_ATTEMPTS} attempts: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
