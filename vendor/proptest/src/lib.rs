//! Minimal, offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored because
//! the build environment has no registry access.
//!
//! Covers exactly the surface the `mdq` workspace uses: the [`proptest!`]
//! macro, the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_filter_map`, range and tuple
//! strategies, [`strategy::Just`], [`collection::vec`], the
//! `prop_assert*` / [`prop_assume!`] macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics: each property runs `cases` deterministic seeded inputs (the
//! seed is derived from the test's module path and name, so failures
//! reproduce across runs). Failing cases panic with the assertion message.
//! **No shrinking** is performed — the failing input is reported as-is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// // In real code the functions carry `#[test]`; here we call it directly.
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`]: expands each `#[test] fn` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strategy,)+);
            $crate::test_runner::run(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                &strategy,
                |__proptest_value| {
                    let ($($pat,)+) = __proptest_value;
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the current case (with an
/// optional formatted message) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Rejects the current case without failing the property; the runner draws
/// a replacement input (up to a rejection cap).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)*)),
            );
        }
    };
}
