//! Concrete generator types.

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator of this stub: a SplitMix64.
///
/// Unlike the real `rand::rngs::StdRng` (ChaCha-based), this is not
/// cryptographically secure and produces a different stream for the same
/// seed — but it is fully deterministic, passes basic uniformity checks, and
/// is more than adequate for generating test states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood — public domain reference constants).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}
