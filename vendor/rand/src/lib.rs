//! Minimal, offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API surface), vendored because the build environment has no
//! registry access.
//!
//! Implements exactly what the `mdq` workspace uses: the [`Rng`] extension
//! trait with [`Rng::gen_range`] over half-open float and integer ranges,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The generator is a
//! SplitMix64 — statistically solid for test workloads and fully
//! deterministic per seed, though **not** cryptographically secure and not
//! bit-compatible with the real `StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

pub mod rngs;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample using the supplied bit source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits give the full double mantissa resolution.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = unit_f64(next());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;

    fn sample(self, next: &mut dyn FnMut() -> u64) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u = unit_f64(next()) as f32;
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2⁶⁴ — negligible for test workloads.
                let offset = (u128::from(next()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let other: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
        // The samples should span most of the range.
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect();
        assert!(samples.iter().any(|&x| x < 0.1));
        assert!(samples.iter().any(|&x| x > 0.9));
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let x = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = sample(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
